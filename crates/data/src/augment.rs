//! TrajCL's four trajectory augmentation methods (§IV-A).
//!
//! Each method produces a low-quality *view* of the input trajectory; the
//! contrastive framework treats two views of the same trajectory as a
//! positive pair.

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_geo::{douglas_peucker, Point, Trajectory};

/// Parameters of the augmentation family (paper defaults from §IV-A).
#[derive(Debug, Clone, Copy)]
pub struct AugmentParams {
    /// Maximum point-shift offset ρ_m in meters (paper: 100).
    pub rho_m: f64,
    /// Std-dev of the underlying Gaussian for shifts (paper: N(0, 0.5²)).
    pub shift_sigma: f64,
    /// Proportion of points masked, ρ_d ∈ (0,1) (paper: 0.3).
    pub rho_d: f64,
    /// Proportion of points kept by truncation, ρ_b ∈ (0,1) (paper: 0.7).
    pub rho_b: f64,
    /// Douglas–Peucker threshold ρ_p in meters (paper: 100).
    pub rho_p: f64,
}

impl Default for AugmentParams {
    fn default() -> Self {
        AugmentParams {
            rho_m: 100.0,
            shift_sigma: 0.5,
            rho_d: 0.3,
            rho_b: 0.7,
            rho_p: 100.0,
        }
    }
}

/// The augmentation methods (plus `Raw` for the no-augmentation ablation of
/// Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Augmentation {
    /// Identity (no augmentation).
    Raw,
    /// Point shifting (Eq. 4): bounded-Gaussian offset per coordinate.
    PointShift,
    /// Point masking (Eq. 5): remove a random subset, keep order.
    PointMask,
    /// Trajectory truncating (Eq. 6): keep a random contiguous window.
    Truncate,
    /// Trajectory simplification (Eq. 7): Douglas–Peucker.
    Simplify,
}

impl Augmentation {
    /// All five options in the Fig. 8 grid order.
    pub fn all() -> [Augmentation; 5] {
        [
            Augmentation::Raw,
            Augmentation::PointShift,
            Augmentation::Simplify,
            Augmentation::PointMask,
            Augmentation::Truncate,
        ]
    }

    /// Short name used in the Fig. 8 heat-map axes.
    pub fn name(&self) -> &'static str {
        match self {
            Augmentation::Raw => "Raw",
            Augmentation::PointShift => "Shift",
            Augmentation::PointMask => "Mask",
            Augmentation::Truncate => "Trun.",
            Augmentation::Simplify => "Simp.",
        }
    }

    /// Applies the augmentation, producing a view of `traj`.
    pub fn apply(
        &self,
        traj: &Trajectory,
        params: &AugmentParams,
        rng: &mut impl Rng,
    ) -> Trajectory {
        match self {
            Augmentation::Raw => traj.clone(),
            Augmentation::PointShift => point_shift(traj, params.rho_m, params.shift_sigma, rng),
            Augmentation::PointMask => point_mask(traj, params.rho_d, rng),
            Augmentation::Truncate => truncate(traj, params.rho_b, rng),
            Augmentation::Simplify => douglas_peucker(traj, params.rho_p),
        }
    }
}

/// Bounded-Gaussian sample in `[-1, 1]` scaled by `rho_m` (Eq. 4's
/// `X_n ~ (ρ_m/λ)·N(0, σ²)` truncated to the max offset).
fn bounded_gaussian_offset(rho_m: f64, sigma: f64, rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma;
        if z.abs() <= 1.0 {
            return z * rho_m;
        }
    }
}

/// Point shifting: adds an independent bounded offset to every coordinate.
pub fn point_shift(traj: &Trajectory, rho_m: f64, sigma: f64, rng: &mut impl Rng) -> Trajectory {
    traj.points()
        .iter()
        .map(|p| {
            Point::new(
                p.x + bounded_gaussian_offset(rho_m, sigma, rng),
                p.y + bounded_gaussian_offset(rho_m, sigma, rng),
            )
        })
        .collect()
}

/// Point masking: removes `⌊ρ_d·|T|⌋` uniformly chosen points, preserving
/// the order of the survivors (Eq. 5). Always keeps at least one point.
pub fn point_mask(traj: &Trajectory, rho_d: f64, rng: &mut impl Rng) -> Trajectory {
    assert!((0.0..1.0).contains(&rho_d), "rho_d must be in [0,1)");
    let n = traj.len();
    let keep = (((1.0 - rho_d) * n as f64).floor() as usize).max(1);
    if keep >= n {
        return traj.clone();
    }
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let mut kept: Vec<usize> = indices.into_iter().take(keep).collect();
    kept.sort_unstable();
    kept.into_iter().map(|i| traj.point(i)).collect()
}

/// Trajectory truncating: keeps a contiguous window of `⌊ρ_b·|T|⌋` points
/// starting at a random offset (Eq. 6).
pub fn truncate(traj: &Trajectory, rho_b: f64, rng: &mut impl Rng) -> Trajectory {
    assert!(
        (0.0..=1.0).contains(&rho_b) && rho_b > 0.0,
        "rho_b must be in (0,1]"
    );
    let n = traj.len();
    let keep = ((rho_b * n as f64).floor() as usize).clamp(1, n);
    let max_start = n - keep;
    let start = if max_start == 0 {
        0
    } else {
        rng.gen_range(0..=max_start)
    };
    traj.points()[start..start + keep].iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn zigzag(n: usize) -> Trajectory {
        (0..n)
            .map(|i| Point::new(i as f64 * 50.0, if i % 2 == 0 { 0.0 } else { 120.0 }))
            .collect()
    }

    #[test]
    fn shift_bounded_by_rho_m() {
        let t = zigzag(40);
        let mut rng = StdRng::seed_from_u64(0);
        let s = point_shift(&t, 100.0, 0.5, &mut rng);
        assert_eq!(s.len(), t.len());
        let mut moved = false;
        for (a, b) in t.points().iter().zip(s.points()) {
            assert!((a.x - b.x).abs() <= 100.0 + 1e-9);
            assert!((a.y - b.y).abs() <= 100.0 + 1e-9);
            moved |= a != b;
        }
        assert!(moved, "shift must actually move points");
    }

    #[test]
    fn mask_keeps_exact_count_and_order() {
        let t = zigzag(30);
        let mut rng = StdRng::seed_from_u64(1);
        let m = point_mask(&t, 0.3, &mut rng);
        assert_eq!(m.len(), 21); // floor(0.7 * 30)
                                 // Survivors appear in the original order (subsequence check).
        let mut cursor = 0;
        for p in m.points() {
            let pos = t.points()[cursor..].iter().position(|q| q == p);
            assert!(pos.is_some(), "masked output must be a subsequence");
            cursor += pos.unwrap() + 1;
        }
    }

    #[test]
    fn mask_never_empties() {
        let t = zigzag(2);
        let mut rng = StdRng::seed_from_u64(2);
        let m = point_mask(&t, 0.9, &mut rng);
        assert!(!m.is_empty());
    }

    #[test]
    fn truncate_window_is_contiguous() {
        let t = zigzag(20);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let w = truncate(&t, 0.7, &mut rng);
            assert_eq!(w.len(), 14);
            let start = t.points().iter().position(|p| *p == w.point(0)).unwrap();
            for (i, p) in w.points().iter().enumerate() {
                assert_eq!(*p, t.point(start + i), "window must be contiguous");
            }
        }
    }

    #[test]
    fn simplify_keeps_endpoints() {
        let t = zigzag(25);
        let mut rng = StdRng::seed_from_u64(4);
        let s = Augmentation::Simplify.apply(&t, &AugmentParams::default(), &mut rng);
        assert_eq!(s.point(0), t.point(0));
        assert_eq!(s.point(s.len() - 1), t.point(t.len() - 1));
        assert!(s.len() <= t.len());
    }

    #[test]
    fn raw_is_identity() {
        let t = zigzag(10);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            Augmentation::Raw.apply(&t, &AugmentParams::default(), &mut rng),
            t
        );
    }

    #[test]
    fn all_augmentations_produce_nonempty_views() {
        let t = zigzag(25);
        let params = AugmentParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        for aug in Augmentation::all() {
            let v = aug.apply(&t, &params, &mut rng);
            assert!(!v.is_empty(), "{} emptied the trajectory", aug.name());
        }
    }
}
