//! Dataset profiles mimicking the paper's four datasets (Table II), scaled
//! to laptop-class sizes.
//!
//! | paper dataset | #traj (paper) | avg pts | avg len | region character |
//! |---------------|---------------|---------|---------|------------------|
//! | Porto         | 1.37 M        | 48      | 6.4 km  | mid-density city |
//! | Chengdu       | 4.48 M        | 105     | 3.5 km  | dense, small     |
//! | Xi'an         | 0.90 M        | 118     | 3.3 km  | dense, small     |
//! | Germany       | 0.14 M        | 72      | 252 km  | country-wide     |
//!
//! The profiles reproduce the *relative* characteristics (points per
//! trajectory, sample spacing, region extent, density) that drive the
//! experimental trends; absolute counts are scaled down via
//! [`DatasetProfile::default_train_size`] and friends.

use crate::city::CityConfig;

/// A named dataset profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// Porto taxi (mid-density, medium trips).
    Porto,
    /// Chengdu ride-hailing (dense, long point sequences, small region).
    Chengdu,
    /// Xi'an ride-hailing (dense, longest point sequences).
    Xian,
    /// Germany country-wide user-submitted routes (sparse, huge region).
    Germany,
}

impl DatasetProfile {
    /// Porto profile.
    pub fn porto() -> Self {
        DatasetProfile::Porto
    }

    /// Chengdu profile.
    pub fn chengdu() -> Self {
        DatasetProfile::Chengdu
    }

    /// Xi'an profile.
    pub fn xian() -> Self {
        DatasetProfile::Xian
    }

    /// Germany profile.
    pub fn germany() -> Self {
        DatasetProfile::Germany
    }

    /// All four profiles in the paper's table order.
    pub fn all() -> [DatasetProfile; 4] {
        [
            DatasetProfile::Porto,
            DatasetProfile::Chengdu,
            DatasetProfile::Xian,
            DatasetProfile::Germany,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Porto => "Porto",
            DatasetProfile::Chengdu => "Chengdu",
            DatasetProfile::Xian => "Xi'an",
            DatasetProfile::Germany => "Germany",
        }
    }

    /// Deterministic seed per dataset (so every experiment sees the same
    /// city layout).
    pub fn seed(&self) -> u64 {
        match self {
            DatasetProfile::Porto => 0x504F_5254,
            DatasetProfile::Chengdu => 0x4348_454E,
            DatasetProfile::Xian => 0x5849_414E,
            DatasetProfile::Germany => 0x4745_524D,
        }
    }

    /// Simulator parameters reproducing the dataset's character.
    ///
    /// Spacing is chosen so `mean_points × step_mean` matches the paper's
    /// average trajectory length (e.g. Porto: 48 pts × ~133 m ≈ 6.4 km).
    pub fn city_config(&self) -> CityConfig {
        match self {
            DatasetProfile::Porto => CityConfig {
                width: 12_000.0,
                height: 10_000.0,
                min_points: 20,
                max_points: 200,
                mean_points: 48.0,
                step_mean: 133.0,
                step_jitter: 0.25,
                noise_sigma: 12.0,
                turn_prob: 0.15,
                axis_bias: 0.55,
                hotspots: 5,
                hotspot_prob: 0.6,
            },
            DatasetProfile::Chengdu => CityConfig {
                width: 6_000.0,
                height: 6_000.0,
                min_points: 20,
                max_points: 200,
                mean_points: 105.0,
                step_mean: 33.0,
                step_jitter: 0.2,
                noise_sigma: 8.0,
                turn_prob: 0.1,
                axis_bias: 0.8,
                hotspots: 4,
                hotspot_prob: 0.7,
            },
            DatasetProfile::Xian => CityConfig {
                width: 6_500.0,
                height: 6_500.0,
                min_points: 20,
                max_points: 200,
                mean_points: 118.0,
                step_mean: 28.0,
                step_jitter: 0.2,
                noise_sigma: 8.0,
                turn_prob: 0.1,
                axis_bias: 0.85,
                hotspots: 4,
                hotspot_prob: 0.7,
            },
            DatasetProfile::Germany => CityConfig {
                width: 600_000.0,
                height: 700_000.0,
                min_points: 20,
                max_points: 200,
                mean_points: 72.0,
                step_mean: 3_500.0,
                step_jitter: 0.5,
                noise_sigma: 60.0,
                turn_prob: 0.25,
                axis_bias: 0.1,
                hotspots: 12,
                hotspot_prob: 0.5,
            },
        }
    }

    /// Grid cell side in meters (paper default: 100 m city-scale; Germany
    /// needs coarser cells to keep the vocabulary tractable, mirroring the
    /// paper's observation that its grid space is the largest).
    pub fn cell_side(&self) -> f64 {
        match self {
            DatasetProfile::Germany => 10_000.0,
            _ => 100.0,
        }
    }

    /// Scaled default training-set size (paper: 200k city / 30k Germany).
    pub fn default_train_size(&self) -> usize {
        match self {
            DatasetProfile::Germany => 600,
            _ => 2_000,
        }
    }

    /// Scaled default database size for query experiments (paper: 100k).
    pub fn default_db_size(&self) -> usize {
        2_000
    }

    /// Scaled default query count (paper: 1 000).
    pub fn default_query_count(&self) -> usize {
        100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_names_and_seeds() {
        let all = DatasetProfile::all();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(all[i].name(), all[j].name());
                assert_ne!(all[i].seed(), all[j].seed());
            }
        }
    }

    #[test]
    fn mean_trip_length_tracks_paper() {
        // mean_points × step_mean should approximate the paper's average
        // trajectory lengths: 6.37 km, 3.47 km, 3.25 km, 252 km.
        let expect_km = [6.37, 3.47, 3.25, 252.0];
        for (profile, expect) in DatasetProfile::all().iter().zip(expect_km) {
            let cfg = profile.city_config();
            let approx_km = cfg.mean_points * cfg.step_mean / 1000.0;
            let ratio = approx_km / expect;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: {approx_km:.1} km vs paper {expect} km",
                profile.name()
            );
        }
    }

    #[test]
    fn dense_cities_have_smaller_steps() {
        let porto = DatasetProfile::porto().city_config();
        let chengdu = DatasetProfile::chengdu().city_config();
        let xian = DatasetProfile::xian().city_config();
        assert!(chengdu.step_mean < porto.step_mean);
        assert!(xian.step_mean < porto.step_mean);
        assert!(chengdu.mean_points > porto.mean_points);
    }

    #[test]
    fn germany_is_the_outlier() {
        let g = DatasetProfile::germany().city_config();
        assert!(g.width > 100_000.0);
        assert!(DatasetProfile::germany().cell_side() > DatasetProfile::porto().cell_side());
        assert!(
            DatasetProfile::germany().default_train_size()
                < DatasetProfile::porto().default_train_size()
        );
    }
}
