//! The §V-B evaluation protocol and ranking metrics.
//!
//! Ground truth: for a sampled trajectory `T_q`, the odd-indexed points form
//! the query `T_q^a` and the even-indexed points form `T_q^b`, which is
//! planted in the database as the known most-similar trajectory. The metric
//! is the mean rank of `T_q^b` when the database is sorted by predicted
//! similarity to `T_q^a` (1 is perfect).

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_geo::Trajectory;

/// A query workload with planted ground truth.
#[derive(Debug, Clone)]
pub struct QueryProtocol {
    /// Query trajectories (`T_q^a`).
    pub queries: Vec<Trajectory>,
    /// Database (`T_q^b` ground truths + random fillers).
    pub database: Vec<Trajectory>,
    /// `ground_truth[qi]` = database index of query `qi`'s true match.
    pub ground_truth: Vec<usize>,
}

impl QueryProtocol {
    /// Builds the protocol from a test pool: samples `n_queries`
    /// trajectories for the odd/even split and fills the database with
    /// distinct trajectories from the pool up to `db_size`.
    ///
    /// # Panics
    /// Panics if the pool is smaller than `n_queries + (db_size - n_queries)`
    /// or if `db_size < n_queries`.
    pub fn build(
        pool: &[Trajectory],
        n_queries: usize,
        db_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(db_size >= n_queries, "database must hold all ground truths");
        assert!(
            pool.len() >= db_size,
            "pool too small: {} < {db_size}",
            pool.len()
        );
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        indices.shuffle(rng);
        let query_src = &indices[..n_queries];
        let filler_src = &indices[n_queries..db_size];

        let mut queries = Vec::with_capacity(n_queries);
        let mut database = Vec::with_capacity(db_size);
        let mut ground_truth = Vec::with_capacity(n_queries);
        for &i in query_src {
            queries.push(pool[i].odd_points());
            ground_truth.push(database.len());
            database.push(pool[i].even_points());
        }
        for &i in filler_src {
            database.push(pool[i].clone());
        }
        QueryProtocol {
            queries,
            database,
            ground_truth,
        }
    }

    /// Shrinks the database to its first `db_size` entries (all ground
    /// truths stay — they are stored first), for the Table III |D| sweep.
    pub fn with_db_size(&self, db_size: usize) -> QueryProtocol {
        assert!(db_size >= self.queries.len(), "would drop ground truths");
        QueryProtocol {
            queries: self.queries.clone(),
            database: self.database[..db_size.min(self.database.len())].to_vec(),
            ground_truth: self.ground_truth.clone(),
        }
    }

    /// Applies a degradation to every query and database trajectory
    /// (down-sampling / distortion experiments degrade *both* sides).
    pub fn degrade(&self, mut f: impl FnMut(&Trajectory) -> Trajectory) -> QueryProtocol {
        QueryProtocol {
            queries: self.queries.iter().map(&mut f).collect(),
            database: self.database.iter().map(&mut f).collect(),
            ground_truth: self.ground_truth.clone(),
        }
    }
}

/// Mean rank of the ground-truth match given the full distance matrix
/// (row-major `queries × database`, smaller = more similar).
pub fn mean_rank(dists: &[f64], db_size: usize, ground_truth: &[usize]) -> f64 {
    assert_eq!(
        dists.len(),
        ground_truth.len() * db_size,
        "matrix shape mismatch"
    );
    let mut total = 0.0;
    for (qi, &gt) in ground_truth.iter().enumerate() {
        let row = &dists[qi * db_size..(qi + 1) * db_size];
        let t = row[gt];
        let rank = 1 + row.iter().filter(|&&d| d < t).count();
        total += rank as f64;
    }
    total / ground_truth.len() as f64
}

/// Indices of the `k` smallest values (ties broken by index).
pub fn top_k(dists: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..dists.len()).collect();
    idx.sort_by(|&a, &b| {
        dists[a]
            .partial_cmp(&dists[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// HR@k: fraction of the true top-`k` found in the predicted top-`k`
/// (Table X).
pub fn hit_ratio(true_dists: &[f64], pred_dists: &[f64], k: usize) -> f64 {
    let truth = top_k(true_dists, k);
    let pred = top_k(pred_dists, k);
    let hits = truth.iter().filter(|i| pred.contains(i)).count();
    hits as f64 / k as f64
}

/// Rk@m (e.g. R5@20): recall of the true top-`k` within the predicted
/// top-`m` (Table X).
pub fn recall_k_at_m(true_dists: &[f64], pred_dists: &[f64], k: usize, m: usize) -> f64 {
    let truth = top_k(true_dists, k);
    let pred = top_k(pred_dists, m);
    let hits = truth.iter().filter(|i| pred.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::Point;

    fn pool(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                (0..24)
                    .map(|j| Point::new(j as f64 * 10.0, i as f64 * 100.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn build_plants_ground_truth_first() {
        let p = pool(50);
        let mut rng = StdRng::seed_from_u64(0);
        let proto = QueryProtocol::build(&p, 5, 30, &mut rng);
        assert_eq!(proto.queries.len(), 5);
        assert_eq!(proto.database.len(), 30);
        assert_eq!(proto.ground_truth, vec![0, 1, 2, 3, 4]);
        // Query and its ground truth partition the source trajectory.
        for qi in 0..5 {
            let q = &proto.queries[qi];
            let g = &proto.database[proto.ground_truth[qi]];
            assert_eq!(q.len() + g.len(), 24);
        }
    }

    #[test]
    fn with_db_size_keeps_ground_truths() {
        let p = pool(60);
        let mut rng = StdRng::seed_from_u64(1);
        let proto = QueryProtocol::build(&p, 4, 50, &mut rng);
        let small = proto.with_db_size(10);
        assert_eq!(small.database.len(), 10);
        for (&gt, q) in small.ground_truth.iter().zip(&small.queries) {
            assert!(gt < 10);
            assert_eq!(small.database[gt].len() + q.len(), 24);
        }
    }

    #[test]
    fn mean_rank_perfect_and_worst() {
        // 2 queries, db of 3; distances place gt first for q0, last for q1.
        let dists = vec![0.1, 5.0, 9.0, /* q1: gt idx 1 */ 0.5, 7.0, 0.2];
        assert_eq!(mean_rank(&dists, 3, &[0, 1]), (1.0 + 3.0) / 2.0);
    }

    #[test]
    fn hit_ratio_and_recall() {
        let truth = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let pred_perfect = truth.clone();
        assert_eq!(hit_ratio(&truth, &pred_perfect, 3), 1.0);
        // Prediction reverses everything: top-3 true = {0,1,2}, predicted
        // top-3 = {5,4,3} -> 0 hits.
        let pred_rev: Vec<f64> = truth.iter().rev().copied().collect();
        assert_eq!(hit_ratio(&truth, &pred_rev, 3), 0.0);
        // But recall@6 recovers everything.
        assert_eq!(recall_k_at_m(&truth, &pred_rev, 3, 6), 1.0);
    }

    #[test]
    fn degrade_applies_everywhere() {
        let p = pool(40);
        let mut rng = StdRng::seed_from_u64(2);
        let proto = QueryProtocol::build(&p, 3, 20, &mut rng);
        let degraded =
            proto.degrade(|t| Trajectory::new(t.points().iter().take(5).copied().collect()));
        assert!(degraded.queries.iter().all(|t| t.len() <= 5));
        assert!(degraded.database.iter().all(|t| t.len() <= 5));
        assert_eq!(degraded.ground_truth, proto.ground_truth);
    }
}
