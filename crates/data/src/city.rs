//! Synthetic city trajectory simulator.
//!
//! The paper evaluates on four external GPS datasets (Porto, Chengdu, Xi'an,
//! Germany) that cannot be fetched here; this module provides the documented
//! substitution (DESIGN.md §4): a movement simulator whose output matches
//! the statistics the experiments depend on — region extent, trajectory
//! length distribution, sample spacing, street-grid-like turning behaviour,
//! hotspot density and GPS noise.
//!
//! A trajectory is generated as a heading-based walk: a vehicle starts near
//! one of a few density hotspots, travels with roughly constant speed,
//! turns at street-like angles (axis-aligned with probability `axis_bias`),
//! reflects off the region boundary, and every sample gets isotropic GPS
//! noise.

use rand::Rng;
use trajcl_geo::{Bbox, Point, Trajectory};

/// Parameters of the simulator.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Region width in meters.
    pub width: f64,
    /// Region height in meters.
    pub height: f64,
    /// Hard bounds on points per trajectory (paper filter: 20..=200).
    pub min_points: usize,
    /// Upper bound on points per trajectory.
    pub max_points: usize,
    /// Mean points per trajectory.
    pub mean_points: f64,
    /// Mean distance between consecutive samples (meters).
    pub step_mean: f64,
    /// Relative jitter of the step length (0..1).
    pub step_jitter: f64,
    /// GPS noise standard deviation (meters).
    pub noise_sigma: f64,
    /// Probability of turning at each step.
    pub turn_prob: f64,
    /// Probability that a turn snaps to a 90° street grid.
    pub axis_bias: f64,
    /// Number of start/end density hotspots.
    pub hotspots: usize,
    /// Probability a trip starts near a hotspot rather than uniformly.
    pub hotspot_prob: f64,
}

impl CityConfig {
    /// The simulated region.
    pub fn region(&self) -> Bbox {
        Bbox::new(Point::new(0.0, 0.0), Point::new(self.width, self.height))
    }
}

/// A deterministic city: hotspot layout + config.
#[derive(Debug, Clone)]
pub struct City {
    cfg: CityConfig,
    hotspot_centers: Vec<Point>,
}

impl City {
    /// Instantiates a city, drawing hotspot locations from `rng`.
    pub fn new(cfg: CityConfig, rng: &mut impl Rng) -> Self {
        let hotspot_centers = (0..cfg.hotspots)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.15..0.85) * cfg.width,
                    rng.gen_range(0.15..0.85) * cfg.height,
                )
            })
            .collect();
        City {
            cfg,
            hotspot_centers,
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &CityConfig {
        &self.cfg
    }

    /// The simulated region.
    pub fn region(&self) -> Bbox {
        self.cfg.region()
    }

    fn sample_start(&self, rng: &mut impl Rng) -> Point {
        let cfg = &self.cfg;
        if !self.hotspot_centers.is_empty() && rng.gen::<f64>() < cfg.hotspot_prob {
            let c = self.hotspot_centers[rng.gen_range(0..self.hotspot_centers.len())];
            let spread = 0.06 * cfg.width.min(cfg.height);
            Point::new(
                (c.x + gaussian(rng) * spread).clamp(0.0, cfg.width),
                (c.y + gaussian(rng) * spread).clamp(0.0, cfg.height),
            )
        } else {
            Point::new(
                rng.gen_range(0.0..cfg.width),
                rng.gen_range(0.0..cfg.height),
            )
        }
    }

    /// Generates one trajectory.
    pub fn generate_trajectory(&self, rng: &mut impl Rng) -> Trajectory {
        let cfg = &self.cfg;
        let n = (cfg.mean_points * (1.0 + 0.3 * gaussian(rng)))
            .round()
            .clamp(cfg.min_points as f64, cfg.max_points as f64) as usize;

        let mut pos = self.sample_start(rng);
        let mut heading = if rng.gen::<f64>() < cfg.axis_bias {
            (rng.gen_range(0..4) as f64) * std::f64::consts::FRAC_PI_2
        } else {
            rng.gen_range(0.0..std::f64::consts::TAU)
        };
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            let noisy = Point::new(
                pos.x + gaussian(rng) * cfg.noise_sigma,
                pos.y + gaussian(rng) * cfg.noise_sigma,
            );
            pts.push(noisy);

            if rng.gen::<f64>() < cfg.turn_prob {
                if rng.gen::<f64>() < cfg.axis_bias {
                    // Street-grid turn: ±90°, occasionally a U-turn.
                    let choice = rng.gen_range(0..8);
                    heading += match choice {
                        0..=2 => std::f64::consts::FRAC_PI_2,
                        3..=5 => -std::f64::consts::FRAC_PI_2,
                        6 => std::f64::consts::PI,
                        _ => 0.0,
                    };
                } else {
                    heading += rng.gen_range(-1.0..1.0) * std::f64::consts::FRAC_PI_2;
                }
            } else {
                // Gentle curvature.
                heading += gaussian(rng) * 0.05;
            }
            let step = cfg.step_mean * (1.0 + cfg.step_jitter * gaussian(rng)).max(0.2);
            pos.x += heading.cos() * step;
            pos.y += heading.sin() * step;
            // Reflect at the region boundary.
            if pos.x < 0.0 || pos.x > cfg.width {
                heading = std::f64::consts::PI - heading;
                pos.x = pos.x.clamp(0.0, cfg.width);
            }
            if pos.y < 0.0 || pos.y > cfg.height {
                heading = -heading;
                pos.y = pos.y.clamp(0.0, cfg.height);
            }
        }
        Trajectory::new(pts)
    }

    /// Generates `count` trajectories.
    pub fn generate(&self, count: usize, rng: &mut impl Rng) -> Vec<Trajectory> {
        (0..count).map(|_| self.generate_trajectory(rng)).collect()
    }
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;
    use rand::{rngs::StdRng, SeedableRng};

    fn porto_city() -> (City, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let city = City::new(DatasetProfile::porto().city_config(), &mut rng);
        (city, rng)
    }

    #[test]
    fn trajectories_respect_point_bounds() {
        let (city, mut rng) = porto_city();
        for t in city.generate(50, &mut rng) {
            assert!(t.len() >= city.config().min_points);
            assert!(t.len() <= city.config().max_points);
        }
    }

    #[test]
    fn points_stay_near_region() {
        let (city, mut rng) = porto_city();
        let region = city.region();
        let slack = 5.0 * city.config().noise_sigma;
        for t in city.generate(20, &mut rng) {
            for p in t.points() {
                assert!(p.x >= region.min.x - slack && p.x <= region.max.x + slack);
                assert!(p.y >= region.min.y - slack && p.y <= region.max.y + slack);
            }
        }
    }

    #[test]
    fn step_lengths_near_configured_mean() {
        let (city, mut rng) = porto_city();
        let mut total = 0.0;
        let mut count = 0usize;
        for t in city.generate(30, &mut rng) {
            for (a, b) in t.segments() {
                total += a.dist(&b);
                count += 1;
            }
        }
        let mean = total / count as f64;
        let expect = city.config().step_mean;
        assert!(
            (mean - expect).abs() < expect * 0.5,
            "mean step {mean} too far from configured {expect}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let c1 = City::new(DatasetProfile::porto().city_config(), &mut rng1);
        let c2 = City::new(DatasetProfile::porto().city_config(), &mut rng2);
        assert_eq!(c1.generate(3, &mut rng1), c2.generate(3, &mut rng2));
    }

    #[test]
    fn trajectories_are_diverse() {
        let (city, mut rng) = porto_city();
        let ts = city.generate(10, &mut rng);
        for i in 0..ts.len() {
            for j in i + 1..ts.len() {
                assert_ne!(ts[i], ts[j], "independent trajectories must differ");
            }
        }
    }
}
