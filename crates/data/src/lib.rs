//! # trajcl-data
//!
//! Dataset substrate for the TrajCL reproduction:
//!
//! * [`city`] — a synthetic city trajectory simulator substituting the
//!   paper's four external GPS datasets (see DESIGN.md §4 for the
//!   substitution argument);
//! * [`profiles`] — per-dataset parameterisations matching Table II's
//!   statistics (Porto / Chengdu / Xi'an / Germany);
//! * [`dataset`] — generation, preprocessing filter, splits, statistics;
//! * [`augment`] — TrajCL's four augmentation methods (§IV-A);
//! * [`transforms`] — test-time down-sampling and distortion (Tables IV/V);
//! * [`protocol`] — the §V-B odd/even query protocol, mean rank, HR@k and
//!   Rk@m metrics.
//!
//! ```
//! use trajcl_data::{Augmentation, AugmentParams, Dataset, DatasetProfile};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dataset = Dataset::generate(DatasetProfile::porto(), 10, 0);
//! assert_eq!(dataset.trajectories.len(), 10);
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let view = Augmentation::PointMask.apply(
//!     &dataset.trajectories[0],
//!     &AugmentParams::default(),
//!     &mut rng,
//! );
//! assert!(view.len() < dataset.trajectories[0].len());
//! ```

pub mod augment;
pub mod city;
pub mod dataset;
pub mod io;
pub mod profiles;
pub mod protocol;
pub mod transforms;

pub use augment::{point_mask, point_shift, truncate, AugmentParams, Augmentation};
pub use city::{City, CityConfig};
pub use dataset::{Dataset, DatasetStats, Splits};
pub use io::{load_trajectory_file, read_trajectories, save_trajectory_file, write_trajectories};
pub use profiles::DatasetProfile;
pub use protocol::{hit_ratio, mean_rank, recall_k_at_m, top_k, QueryProtocol};
pub use transforms::{distort, downsample, map_all};
