//! Test-time trajectory degradations used by the robustness experiments
//! (Tables IV and V): down-sampling and point distortion.

use crate::augment::point_shift;
use rand::Rng;
use trajcl_geo::Trajectory;

/// Down-sampling (Table IV): drops each point independently with
/// probability `rho_s`, always keeping at least one point.
pub fn downsample(traj: &Trajectory, rho_s: f64, rng: &mut impl Rng) -> Trajectory {
    assert!((0.0..1.0).contains(&rho_s), "rho_s must be in [0,1)");
    let kept: Vec<_> = traj
        .points()
        .iter()
        .filter(|_| rng.gen::<f64>() >= rho_s)
        .copied()
        .collect();
    if kept.is_empty() {
        Trajectory::new(vec![traj.point(rng.gen_range(0..traj.len()))])
    } else {
        Trajectory::new(kept)
    }
}

/// Distortion (Table V): shifts a `rho_d` proportion of points following
/// Eq. 4's bounded-Gaussian offset with max offset `rho_m`.
pub fn distort(
    traj: &Trajectory,
    rho_d: f64,
    rho_m: f64,
    sigma: f64,
    rng: &mut impl Rng,
) -> Trajectory {
    assert!((0.0..=1.0).contains(&rho_d), "rho_d must be in [0,1]");
    let shifted = point_shift(traj, rho_m, sigma, rng);
    let pts = traj
        .points()
        .iter()
        .zip(shifted.points())
        .map(|(orig, moved)| {
            if rng.gen::<f64>() < rho_d {
                *moved
            } else {
                *orig
            }
        })
        .collect();
    Trajectory::new(pts)
}

/// Applies `f` to every trajectory (convenience for degrading whole query
/// sets / databases).
pub fn map_all(
    trajs: &[Trajectory],
    mut f: impl FnMut(&Trajectory) -> Trajectory,
) -> Vec<Trajectory> {
    trajs.iter().map(&mut f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::Point;

    fn line(n: usize) -> Trajectory {
        (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect()
    }

    #[test]
    fn downsample_rate_statistics() {
        let t = line(1000);
        let mut rng = StdRng::seed_from_u64(0);
        let d = downsample(&t, 0.3, &mut rng);
        let kept_frac = d.len() as f64 / t.len() as f64;
        assert!((kept_frac - 0.7).abs() < 0.05, "kept {kept_frac}");
    }

    #[test]
    fn downsample_zero_is_identity() {
        let t = line(50);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(downsample(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn downsample_never_empties() {
        let t = line(3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!downsample(&t, 0.9, &mut rng).is_empty());
        }
    }

    #[test]
    fn distort_moves_expected_fraction() {
        let t = line(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let d = distort(&t, 0.2, 100.0, 0.5, &mut rng);
        assert_eq!(d.len(), t.len());
        let moved = t
            .points()
            .iter()
            .zip(d.points())
            .filter(|(a, b)| a != b)
            .count();
        let frac = moved as f64 / t.len() as f64;
        assert!((frac - 0.2).abs() < 0.05, "moved fraction {frac}");
        // Offsets bounded by rho_m per coordinate.
        for (a, b) in t.points().iter().zip(d.points()) {
            assert!((a.x - b.x).abs() <= 100.0 + 1e-9);
            assert!((a.y - b.y).abs() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn distort_full_changes_everything_distort_zero_nothing() {
        let t = line(100);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(distort(&t, 0.0, 100.0, 0.5, &mut rng), t);
        let all = distort(&t, 1.0, 100.0, 0.5, &mut rng);
        let moved = t
            .points()
            .iter()
            .zip(all.points())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(moved, 100);
    }
}
