//! Pointwise spatial features (TrajCL Eq. 8).
//!
//! For each point `p_i` the spatial feature embedding is the four-tuple
//! `(x_i, y_i, r_i, l_i)` where `r_i` is the radian between the segments
//! around `p_i` and `l_i` is the mean length of those segments. Endpoints,
//! which lack one neighbour, take `r = 0` and the single adjacent segment
//! length.

use crate::trajectory::{Bbox, Trajectory};

/// Dimensionality of the spatial feature tuple (`d_s = 4` in the paper).
pub const SPATIAL_DIM: usize = 4;

/// One point's spatial features.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialFeature {
    /// Easting.
    pub x: f64,
    /// Northing.
    pub y: f64,
    /// Radian `∠ p_{i-1} p_i p_{i+1}` (0 at the endpoints).
    pub radian: f64,
    /// Mean adjacent-segment length.
    pub mean_len: f64,
}

/// Computes the spatial features of every point.
pub fn spatial_features(traj: &Trajectory) -> Vec<SpatialFeature> {
    let pts = traj.points();
    let n = pts.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = pts[i];
        let before = (i > 0).then(|| pts[i - 1].dist(&p));
        let after = (i + 1 < n).then(|| p.dist(&pts[i + 1]));
        let radian = if i > 0 && i + 1 < n {
            p.angle_at(&pts[i - 1], &pts[i + 1])
        } else {
            0.0
        };
        let mean_len = match (before, after) {
            (Some(a), Some(b)) => 0.5 * (a + b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        };
        out.push(SpatialFeature {
            x: p.x,
            y: p.y,
            radian,
            mean_len,
        });
    }
    out
}

/// Normalisation constants mapping raw spatial features into a compact
/// range before they reach the encoder: coordinates become offsets from the
/// region center in units of the half-extent; lengths are scaled by the
/// cell side.
#[derive(Clone, Copy, Debug)]
pub struct SpatialNorm {
    cx: f64,
    cy: f64,
    inv_half_w: f64,
    inv_half_h: f64,
    inv_len_scale: f64,
}

impl SpatialNorm {
    /// Builds normalisation constants for a region and length scale
    /// (typically the grid cell side).
    pub fn new(region: Bbox, len_scale: f64) -> Self {
        let half_w = (region.width() / 2.0).max(1e-9);
        let half_h = (region.height() / 2.0).max(1e-9);
        SpatialNorm {
            cx: (region.min.x + region.max.x) / 2.0,
            cy: (region.min.y + region.max.y) / 2.0,
            inv_half_w: 1.0 / half_w,
            inv_half_h: 1.0 / half_h,
            inv_len_scale: 1.0 / len_scale.max(1e-9),
        }
    }

    /// Normalises one feature tuple to f32 model inputs.
    pub fn apply(&self, f: &SpatialFeature) -> [f32; SPATIAL_DIM] {
        [
            ((f.x - self.cx) * self.inv_half_w) as f32,
            ((f.y - self.cy) * self.inv_half_h) as f32,
            (f.radian / std::f64::consts::PI) as f32,
            (f.mean_len * self.inv_len_scale) as f32,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn interior_point_angle_and_length() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        let f = spatial_features(&t);
        assert_eq!(f.len(), 3);
        // Middle point: right angle, segments 3 and 4 -> mean 3.5.
        assert!((f[1].radian - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((f[1].mean_len - 3.5).abs() < 1e-12);
        // Endpoints: zero radian, adjacent segment length.
        assert_eq!(f[0].radian, 0.0);
        assert!((f[0].mean_len - 3.0).abs() < 1e-12);
        assert!((f[2].mean_len - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_features() {
        let t = Trajectory::from_xy(&[(7.0, 8.0)]);
        let f = spatial_features(&t);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].mean_len, 0.0);
        assert_eq!(f[0].radian, 0.0);
        assert_eq!((f[0].x, f[0].y), (7.0, 8.0));
    }

    #[test]
    fn normalisation_centers_and_scales() {
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(100.0, 200.0));
        let norm = SpatialNorm::new(region, 10.0);
        let f = SpatialFeature {
            x: 100.0,
            y: 0.0,
            radian: std::f64::consts::PI,
            mean_len: 5.0,
        };
        let v = norm.apply(&f);
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!((v[1] + 1.0).abs() < 1e-6);
        assert!((v[2] - 1.0).abs() < 1e-6);
        assert!((v[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn straight_line_radians_are_pi() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let f = spatial_features(&t);
        for feat in &f[1..3] {
            assert!((feat.radian - std::f64::consts::PI).abs() < 1e-4);
        }
    }
}
