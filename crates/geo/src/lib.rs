//! # trajcl-geo
//!
//! Trajectory geometry substrate for the TrajCL reproduction: planar points
//! and segments, trajectories with bounding boxes, the regular-grid space
//! partitioning whose cells become structural tokens (§IV-B), Douglas–Peucker
//! simplification (used by the simplification augmentation, §IV-A), and the
//! pointwise spatial feature four-tuple `(x, y, radian, mean segment length)`
//! of Eq. 8.
//!
//! Coordinates are f64 meters in a local projected plane; model-facing
//! features are converted to f32 at the normalisation boundary.
//!
//! ```
//! use trajcl_geo::{douglas_peucker, Grid, Trajectory};
//!
//! let t = Trajectory::from_xy(&[(0.0, 0.0), (50.0, 1.0), (100.0, 0.0)]);
//! assert_eq!(douglas_peucker(&t, 10.0).len(), 2); // near-straight collapses
//!
//! let grid = Grid::new(t.bbox(), 25.0);
//! assert_eq!(grid.cells_of(&t).len(), 3);
//! ```

pub mod error;
pub mod features;
pub mod grid;
pub mod point;
pub mod simplify;
pub mod svg;
pub mod trajectory;

pub use error::{validate_batch, FeaturizeError};
pub use features::{spatial_features, SpatialFeature, SpatialNorm, SPATIAL_DIM};
pub use grid::{CellId, Grid};
pub use point::Point;
pub use simplify::{douglas_peucker, max_deviation};
pub use svg::{render_knn_figure, render_svg, SvgLayer};
pub use trajectory::{Bbox, Trajectory};
