//! Trajectories (point sequences) and bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bbox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Bbox {
    /// An empty box ready for [`Bbox::expand`].
    pub fn empty() -> Self {
        Bbox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// A box spanning the two corner points.
    pub fn new(min: Point, max: Point) -> Self {
        Bbox { min, max }
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Union of two boxes.
    pub fn union(&self, other: &Bbox) -> Bbox {
        Bbox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Minimum distance from `p` to this box (0 when inside).
    pub fn dist_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// A trajectory: an ordered sequence of at least one location point
/// (`T = [p1, …, p|T|]` in the paper's notation).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Wraps a point sequence.
    pub fn new(points: Vec<Point>) -> Self {
        Trajectory { points }
    }

    /// Builds a trajectory from `(x, y)` tuples.
    pub fn from_xy(coords: &[(f64, f64)]) -> Self {
        Trajectory {
            points: coords.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        }
    }

    /// Number of points `|T|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the trajectory has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Mutable access to the points.
    pub fn points_mut(&mut self) -> &mut Vec<Point> {
        &mut self.points
    }

    /// Consumes the trajectory, returning its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }

    /// The `i`-th point.
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Appends a point.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Total polyline length in meters.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Bounding box of all points.
    ///
    /// # Panics
    /// Panics on an empty trajectory.
    pub fn bbox(&self) -> Bbox {
        assert!(!self.points.is_empty(), "bbox of empty trajectory");
        let mut b = Bbox::empty();
        for p in &self.points {
            b.expand(p);
        }
        b
    }

    /// Sub-trajectory with the points at even indices (`p1, p3, …` in
    /// 1-based paper notation) — used by the §V-B ground-truth protocol.
    pub fn odd_points(&self) -> Trajectory {
        Trajectory::new(self.points.iter().copied().step_by(2).collect())
    }

    /// Sub-trajectory with the points at odd indices (`p2, p4, …`).
    pub fn even_points(&self) -> Trajectory {
        Trajectory::new(self.points.iter().skip(1).copied().step_by(2).collect())
    }

    /// Iterator over consecutive segments.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }
}

impl FromIterator<Point> for Trajectory {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Trajectory {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Trajectory {
        Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0), (2.0, 2.0)])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(staircase().length(), 4.0);
        assert_eq!(Trajectory::from_xy(&[(5.0, 5.0)]).length(), 0.0);
    }

    #[test]
    fn bbox_covers_all_points() {
        let b = staircase().bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(2.0, 2.0));
        assert!(b.contains(&Point::new(1.0, 1.5)));
        assert!(!b.contains(&Point::new(3.0, 0.0)));
    }

    #[test]
    fn odd_even_split_partitions_points() {
        let t = staircase();
        let a = t.odd_points();
        let b = t.even_points();
        assert_eq!(a.len() + b.len(), t.len());
        assert_eq!(a.points()[0], t.points()[0]);
        assert_eq!(a.points()[1], t.points()[2]);
        assert_eq!(b.points()[0], t.points()[1]);
        assert_eq!(b.points()[1], t.points()[3]);
    }

    #[test]
    fn bbox_point_distance() {
        let b = Bbox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(b.dist_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.dist_to_point(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn union_and_dims() {
        let a = Bbox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Bbox::new(Point::new(2.0, -1.0), Point::new(3.0, 0.5));
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(0.0, -1.0));
        assert_eq!(u.max, Point::new(3.0, 1.0));
        assert_eq!(u.width(), 3.0);
        assert_eq!(u.height(), 2.0);
    }

    #[test]
    fn segments_iterator() {
        let t = staircase();
        assert_eq!(t.segments().count(), 4);
    }
}
