//! Errors for trajectory batch featurisation, shared by every featurizer
//! in the workspace (`trajcl_core::Featurizer`, the baselines'
//! `TokenFeaturizer`) so callers at any layer handle one type.

/// Why a batch of trajectories could not be featurised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeaturizeError {
    /// The batch holds no trajectories.
    EmptyBatch,
    /// The trajectory at `index` holds no points.
    EmptyTrajectory {
        /// Position of the offending trajectory within the batch.
        index: usize,
    },
}

impl std::fmt::Display for FeaturizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeaturizeError::EmptyBatch => write!(f, "cannot featurize an empty batch"),
            FeaturizeError::EmptyTrajectory { index } => {
                write!(f, "trajectory {index} in the batch holds no points")
            }
        }
    }
}

impl std::error::Error for FeaturizeError {}

/// Validates the common preconditions: a non-empty batch of non-empty
/// trajectories.
pub fn validate_batch(trajs: &[crate::Trajectory]) -> Result<(), FeaturizeError> {
    if trajs.is_empty() {
        return Err(FeaturizeError::EmptyBatch);
    }
    for (index, t) in trajs.iter().enumerate() {
        if t.is_empty() {
            return Err(FeaturizeError::EmptyTrajectory { index });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Trajectory};

    #[test]
    fn validates_empty_batch() {
        assert_eq!(validate_batch(&[]), Err(FeaturizeError::EmptyBatch));
    }

    #[test]
    fn validates_empty_trajectory_with_index() {
        let good: Trajectory = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]
            .into_iter()
            .collect();
        let bad = Trajectory::new(Vec::new());
        assert_eq!(
            validate_batch(&[good.clone(), bad]),
            Err(FeaturizeError::EmptyTrajectory { index: 1 })
        );
        assert_eq!(validate_batch(&[good]), Ok(()));
    }

    #[test]
    fn displays_are_informative() {
        assert!(FeaturizeError::EmptyBatch
            .to_string()
            .contains("empty batch"));
        assert!(FeaturizeError::EmptyTrajectory { index: 3 }
            .to_string()
            .contains('3'));
    }
}
