//! Minimal SVG rendering of trajectories — used to regenerate the paper's
//! Fig. 1 (3NN query results) as an inspectable artifact, no external
//! dependencies.

use crate::trajectory::{Bbox, Trajectory};
use std::fmt::Write;

/// A polyline to draw: trajectory + stroke colour + width.
#[derive(Debug, Clone)]
pub struct SvgLayer<'a> {
    /// The trajectory to draw.
    pub traj: &'a Trajectory,
    /// Any CSS colour (e.g. `"#e41a1c"` or `"orange"`).
    pub color: String,
    /// Stroke width in pixels.
    pub width: f64,
    /// Optional label rendered near the first point.
    pub label: Option<String>,
}

/// Renders layers into a standalone SVG document of `px × px` pixels,
/// fitted to the union of all layer bounding boxes with a 5% margin.
///
/// # Panics
/// Panics if `layers` is empty or contains an empty trajectory.
pub fn render_svg(layers: &[SvgLayer], px: u32) -> String {
    assert!(!layers.is_empty(), "nothing to render");
    let mut bbox = layers[0].traj.bbox();
    for layer in &layers[1..] {
        bbox = bbox.union(&layer.traj.bbox());
    }
    let margin = 0.05 * bbox.width().max(bbox.height()).max(1.0);
    let min_x = bbox.min.x - margin;
    let min_y = bbox.min.y - margin;
    let span = (bbox.width().max(bbox.height()) + 2.0 * margin).max(1e-9);
    let scale = px as f64 / span;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{px}" height="{px}" viewBox="0 0 {px} {px}">"#
    );
    let _ = writeln!(svg, r#"<rect width="{px}" height="{px}" fill="white"/>"#);
    for layer in layers {
        let mut points = String::new();
        for p in layer.traj.points() {
            let x = (p.x - min_x) * scale;
            // SVG y grows downward; flip so north is up.
            let y = px as f64 - (p.y - min_y) * scale;
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}" stroke-linejoin="round" stroke-linecap="round" opacity="0.85"/>"#,
            points.trim_end(),
            layer.color,
            layer.width
        );
        if let Some(label) = &layer.label {
            let p0 = layer.traj.point(0);
            let x = (p0.x - min_x) * scale;
            let y = px as f64 - (p0.y - min_y) * scale;
            let _ = writeln!(
                svg,
                r#"<text x="{x:.1}" y="{y:.1}" font-size="12" fill="{}">{}</text>"#,
                layer.color, label
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Convenience: render a query (thick yellow-orange) plus its k nearest
/// neighbours (red/green/blue/...) like the paper's Fig. 1 panels.
pub fn render_knn_figure(query: &Trajectory, neighbors: &[&Trajectory], px: u32) -> String {
    const PALETTE: [&str; 5] = ["#e41a1c", "#4daf4a", "#377eb8", "#984ea3", "#ff7f00"];
    let mut layers = vec![SvgLayer {
        traj: query,
        color: "#ffb000".into(),
        width: 4.0,
        label: Some("query".into()),
    }];
    for (i, t) in neighbors.iter().enumerate() {
        layers.push(SvgLayer {
            traj: t,
            color: PALETTE[i % PALETTE.len()].into(),
            width: 2.0,
            label: Some(format!("#{}", i + 1)),
        });
    }
    render_svg(&layers, px)
}

/// Bounding box helper re-exported for callers assembling custom figures.
pub fn layers_bbox(layers: &[SvgLayer]) -> Bbox {
    let mut bbox = layers[0].traj.bbox();
    for layer in &layers[1..] {
        bbox = bbox.union(&layer.traj.bbox());
    }
    bbox
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(points: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(points)
    }

    #[test]
    fn renders_valid_svg_structure() {
        let a = t(&[(0.0, 0.0), (100.0, 100.0)]);
        let layers = [SvgLayer {
            traj: &a,
            color: "red".into(),
            width: 2.0,
            label: None,
        }];
        let svg = render_svg(&layers, 256);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("stroke=\"red\""));
    }

    #[test]
    fn one_polyline_per_layer_plus_labels() {
        let a = t(&[(0.0, 0.0), (50.0, 0.0)]);
        let b = t(&[(0.0, 10.0), (50.0, 10.0)]);
        let svg = render_knn_figure(&a, &[&b], 128);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">query<"));
        assert!(svg.contains(">#1<"));
    }

    #[test]
    fn coordinates_fit_viewport() {
        let a = t(&[(1000.0, 2000.0), (1100.0, 2100.0)]);
        let layers = [SvgLayer {
            traj: &a,
            color: "blue".into(),
            width: 1.0,
            label: None,
        }];
        let svg = render_svg(&layers, 100);
        // All plotted coordinates must be within [0, 100].
        for cap in svg.split("points=\"").skip(1) {
            let coords = cap.split('"').next().unwrap();
            for pair in coords.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!((0.0..=100.0).contains(&x), "x {x} outside viewport");
                assert!((0.0..=100.0).contains(&y), "y {y} outside viewport");
            }
        }
    }

    #[test]
    fn north_is_up() {
        // A point with larger y must get a SMALLER svg y (flipped axis).
        let a = t(&[(0.0, 0.0), (0.0, 100.0)]);
        let layers = [SvgLayer {
            traj: &a,
            color: "k".into(),
            width: 1.0,
            label: None,
        }];
        let svg = render_svg(&layers, 100);
        let coords: Vec<(f64, f64)> = svg
            .split("points=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .split_whitespace()
            .map(|p| {
                let (x, y) = p.split_once(',').unwrap();
                (x.parse().unwrap(), y.parse().unwrap())
            })
            .collect();
        assert!(
            coords[1].1 < coords[0].1,
            "higher y should render higher up"
        );
    }
}
