//! Douglas–Peucker line simplification (used both by the *trajectory
//! simplification* augmentation of TrajCL §IV-A and by downstream tooling).

use crate::point::Point;
use crate::trajectory::Trajectory;

/// Simplifies `traj`, keeping only breaking points farther than `epsilon`
/// meters from the current approximation (plus both end points).
///
/// Trajectories with fewer than three points are returned unchanged.
pub fn douglas_peucker(traj: &Trajectory, epsilon: f64) -> Trajectory {
    let pts = traj.points();
    if pts.len() < 3 {
        return traj.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // Iterative worklist instead of recursion: trajectories can be long and
    // adversarial inputs would otherwise blow the stack.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (a, b) = (&pts[lo], &pts[hi]);
        let mut best = 0.0;
        let mut best_i = lo;
        for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = p.dist_to_segment(a, b);
            if d > best {
                best = d;
                best_i = i;
            }
        }
        if best > epsilon {
            keep[best_i] = true;
            stack.push((lo, best_i));
            stack.push((best_i, hi));
        }
    }
    Trajectory::new(
        pts.iter()
            .zip(&keep)
            .filter_map(|(p, &k)| k.then_some(*p))
            .collect(),
    )
}

/// Maximum deviation (in meters) of `original` from the polyline
/// `simplified` — the quantity Douglas–Peucker bounds by `epsilon`.
pub fn max_deviation(original: &Trajectory, simplified: &Trajectory) -> f64 {
    let segs: Vec<(Point, Point)> = simplified.segments().collect();
    if segs.is_empty() {
        return original
            .points()
            .iter()
            .map(|p| p.dist(&simplified.point(0)))
            .fold(0.0, f64::max);
    }
    original
        .points()
        .iter()
        .map(|p| {
            segs.iter()
                .map(|(a, b)| p.dist_to_segment(a, b))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let s = douglas_peucker(&t, 0.1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), t.point(0));
        assert_eq!(s.point(1), t.point(3));
    }

    #[test]
    fn sharp_turn_is_kept() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]);
        let s = douglas_peucker(&t, 1.0);
        assert_eq!(s.len(), 3, "the apex must survive");
    }

    #[test]
    fn epsilon_zero_keeps_every_non_collinear_point() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.5), (2.0, -0.5), (3.0, 0.0)]);
        let s = douglas_peucker(&t, 0.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn short_trajectories_unchanged() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (9.0, 9.0)]);
        assert_eq!(douglas_peucker(&t, 100.0), t);
        let single = Trajectory::from_xy(&[(1.0, 1.0)]);
        assert_eq!(douglas_peucker(&single, 100.0), single);
    }

    #[test]
    fn deviation_bounded_by_epsilon() {
        // A noisy sine-like path.
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, 40.0 * (x / 80.0).sin() + ((i * 7919) % 13) as f64)
            })
            .collect();
        let t = Trajectory::from_xy(&pts);
        for eps in [5.0, 20.0, 100.0] {
            let s = douglas_peucker(&t, eps);
            let dev = max_deviation(&t, &s);
            assert!(dev <= eps + 1e-9, "deviation {dev} exceeds epsilon {eps}");
        }
    }

    #[test]
    fn output_points_are_subset_in_order() {
        let pts: Vec<(f64, f64)> = (0..30).map(|i| (i as f64, ((i * 31) % 7) as f64)).collect();
        let t = Trajectory::from_xy(&pts);
        let s = douglas_peucker(&t, 2.0);
        let mut cursor = 0;
        for p in s.points() {
            let found = t.points()[cursor..].iter().position(|q| q == p);
            assert!(
                found.is_some(),
                "simplified point not from input (or out of order)"
            );
            cursor += found.unwrap() + 1;
        }
    }
}
