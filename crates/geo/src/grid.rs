//! Regular grid partitioning of the data space (TrajCL §IV-B).
//!
//! Trajectory points are mapped to the grid cell enclosing them; cell ids
//! are the "tokens" whose node2vec embeddings become the structural
//! features.

use crate::point::Point;
use crate::trajectory::{Bbox, Trajectory};

/// Identifier of one grid cell (`row * cols + col`).
pub type CellId = u32;

/// A regular grid over a bounding region.
#[derive(Clone, Debug)]
pub struct Grid {
    origin: Point,
    cell_side: f64,
    cols: usize,
    rows: usize,
}

impl Grid {
    /// Covers `bbox` with square cells of side `cell_side` meters
    /// (the paper's default is 100 m).
    ///
    /// # Panics
    /// Panics if `cell_side <= 0` or the box is degenerate.
    pub fn new(bbox: Bbox, cell_side: f64) -> Self {
        assert!(cell_side > 0.0, "cell side must be positive");
        let w = bbox.width();
        let h = bbox.height();
        assert!(w.is_finite() && h.is_finite(), "grid over an unbounded box");
        let cols = (w / cell_side).ceil().max(1.0) as usize;
        let rows = (h / cell_side).ceil().max(1.0) as usize;
        Grid {
            origin: bbox.min,
            cell_side,
            cols,
            rows,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells (the node2vec vocabulary size).
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Cell side length in meters.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// The cell enclosing `p`, clamped to the grid bounds so out-of-region
    /// points map to border cells.
    pub fn cell_of(&self, p: &Point) -> CellId {
        let col = ((p.x - self.origin.x) / self.cell_side)
            .floor()
            .clamp(0.0, (self.cols - 1) as f64) as usize;
        let row = ((p.y - self.origin.y) / self.cell_side)
            .floor()
            .clamp(0.0, (self.rows - 1) as f64) as usize;
        (row * self.cols + col) as CellId
    }

    /// `(col, row)` of a cell id.
    pub fn col_row(&self, cell: CellId) -> (usize, usize) {
        let c = cell as usize;
        (c % self.cols, c / self.cols)
    }

    /// Center point of a cell.
    pub fn center(&self, cell: CellId) -> Point {
        let (col, row) = self.col_row(cell);
        Point::new(
            self.origin.x + (col as f64 + 0.5) * self.cell_side,
            self.origin.y + (row as f64 + 0.5) * self.cell_side,
        )
    }

    /// The up-to-eight neighbouring cells (the grid-graph edges of §IV-B).
    pub fn neighbors8(&self, cell: CellId) -> Vec<CellId> {
        let (col, row) = self.col_row(cell);
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let nr = row as i64 + dr;
                let nc = col as i64 + dc;
                if nr >= 0 && nr < self.rows as i64 && nc >= 0 && nc < self.cols as i64 {
                    out.push((nr as usize * self.cols + nc as usize) as CellId);
                }
            }
        }
        out
    }

    /// Maps every trajectory point to its cell id.
    pub fn cells_of(&self, traj: &Trajectory) -> Vec<CellId> {
        traj.points().iter().map(|p| self.cell_of(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_4x3() -> Grid {
        Grid::new(
            Bbox::new(Point::new(0.0, 0.0), Point::new(400.0, 300.0)),
            100.0,
        )
    }

    #[test]
    fn dimensions() {
        let g = grid_4x3();
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.num_cells(), 12);
    }

    #[test]
    fn cell_lookup_and_round_trip() {
        let g = grid_4x3();
        let c = g.cell_of(&Point::new(150.0, 250.0));
        assert_eq!(g.col_row(c), (1, 2));
        let center = g.center(c);
        assert_eq!(center, Point::new(150.0, 250.0));
        assert_eq!(g.cell_of(&center), c);
    }

    #[test]
    fn out_of_bounds_clamps_to_border() {
        let g = grid_4x3();
        assert_eq!(g.col_row(g.cell_of(&Point::new(-50.0, -50.0))), (0, 0));
        assert_eq!(g.col_row(g.cell_of(&Point::new(1e9, 1e9))), (3, 2));
    }

    #[test]
    fn neighbors_interior_and_corner() {
        let g = grid_4x3();
        let interior = g.cell_of(&Point::new(150.0, 150.0)); // (1,1)
        assert_eq!(g.neighbors8(interior).len(), 8);
        let corner = g.cell_of(&Point::new(10.0, 10.0)); // (0,0)
        let n = g.neighbors8(corner);
        assert_eq!(n.len(), 3);
        assert!(!n.contains(&corner));
    }

    #[test]
    fn trajectory_cell_sequence_depicts_shape() {
        let g = grid_4x3();
        let t = Trajectory::from_xy(&[(50.0, 50.0), (150.0, 50.0), (250.0, 150.0)]);
        let cells = g.cells_of(&t);
        assert_eq!(cells.len(), 3);
        assert_eq!(g.col_row(cells[0]), (0, 0));
        assert_eq!(g.col_row(cells[1]), (1, 0));
        assert_eq!(g.col_row(cells[2]), (2, 1));
    }

    #[test]
    fn degenerate_region_still_has_one_cell() {
        let g = Grid::new(Bbox::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0)), 100.0);
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.cell_of(&Point::new(5.0, 5.0)), 0);
    }
}
