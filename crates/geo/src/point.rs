//! Planar points and segment geometry.
//!
//! All coordinates are in meters in a local projected plane (the datasets in
//! the paper are city-scale, where an equirectangular projection is
//! accurate to well under GPS noise).

/// A 2-D point in meters.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// Easting (meters).
    pub x: f64,
    /// Northing (meters).
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        self.sq_dist(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in hot loops).
    pub fn sq_dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Distance from this point to the segment `a..b`.
    pub fn dist_to_segment(&self, a: &Point, b: &Point) -> f64 {
        let len2 = a.sq_dist(b);
        if len2 == 0.0 {
            return self.dist(a);
        }
        let t =
            (((self.x - a.x) * (b.x - a.x) + (self.y - a.y) * (b.y - a.y)) / len2).clamp(0.0, 1.0);
        self.dist(&a.lerp(b, t))
    }

    /// Interior angle at `self` between rays `self -> prev` and
    /// `self -> next`, in radians within `[0, π]`.
    ///
    /// Returns `0` when either neighbour coincides with this point.
    pub fn angle_at(&self, prev: &Point, next: &Point) -> f64 {
        let (ux, uy) = (prev.x - self.x, prev.y - self.y);
        let (vx, vy) = (next.x - self.x, next.y - self.y);
        let nu = (ux * ux + uy * uy).sqrt();
        let nv = (vx * vx + vy * vy).sqrt();
        if nu == 0.0 || nv == 0.0 {
            return 0.0;
        }
        let cos = ((ux * vx + uy * vy) / (nu * nv)).clamp(-1.0, 1.0);
        cos.acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.sq_dist(&b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -2.0));
    }

    #[test]
    fn dist_to_segment_projects_and_clamps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Perpendicular projection inside the segment.
        assert_eq!(Point::new(5.0, 3.0).dist_to_segment(&a, &b), 3.0);
        // Beyond the end: distance to the endpoint.
        assert_eq!(Point::new(13.0, 4.0).dist_to_segment(&a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(Point::new(3.0, 4.0).dist_to_segment(&a, &a), 5.0);
    }

    #[test]
    fn angle_straight_line_is_pi() {
        let p = Point::new(0.0, 0.0);
        let prev = Point::new(-1.0, 0.0);
        let next = Point::new(1.0, 0.0);
        assert!((p.angle_at(&prev, &next) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn angle_right_turn_is_half_pi() {
        let p = Point::new(0.0, 0.0);
        let prev = Point::new(-1.0, 0.0);
        let next = Point::new(0.0, 1.0);
        assert!((p.angle_at(&prev, &next) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_degenerate_is_zero() {
        let p = Point::new(1.0, 1.0);
        assert_eq!(p.angle_at(&p, &Point::new(2.0, 2.0)), 0.0);
    }
}
