//! Concurrency suite for `trajcl-serve`: mixed mutation/query traffic
//! against a brute-force oracle, compaction-preserves-kNN properties, and
//! barrier-based snapshot-consistency (no torn reads).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_index::{IndexOptions, Metric, MutableIndex, Quantization};
use trajcl_serve::{ServeConfig, Server};
use trajcl_tensor::{Shape, Tensor};

/// A tiny deterministic TrajCL engine (no pre-loaded database).
fn tiny_engine() -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = TrajClConfig::test_default();
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
    let grid = Grid::new(region, 100.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .build()
        .expect("engine")
}

/// A well-separated synthetic trajectory; injective over the id ranges
/// the tests use (`t * 1000 + i`, `i < 1000 / 9.7`), so no two ids share
/// geometry (ties would make kNN rank comparisons ambiguous).
fn traj_for(id: u64) -> Trajectory {
    let y0 = 10.0 + (id % 1000) as f64 * 9.7 + (id / 1000) as f64 * 211.0;
    (0..6)
        .map(|t| Point::new(40.0 + t as f64 * 120.0, y0 + t as f64 * 3.0))
        .collect()
}

fn l1(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs() as f64).sum()
}

/// Conservative worst-case L1 error of SQ8-quantizing any vector drawn
/// from `vecs`: the bound of a codebook trained on the full set (a
/// codebook trained on any SUBSET has per-dimension spans no larger, so
/// its true bound is no larger either).
fn sq8_l1_bound<'a>(vecs: impl Iterator<Item = &'a Vec<f32>>) -> f64 {
    let mut flat: Vec<f32> = Vec::new();
    let mut d = 0;
    for v in vecs {
        d = v.len();
        flat.extend_from_slice(v);
    }
    trajcl_index::Sq8Codebook::train(&flat, d).l1_error_bound()
}

#[test]
fn mixed_ops_from_many_threads_match_brute_force_oracle() {
    let server =
        Arc::new(Server::new(Arc::new(tiny_engine()), ServeConfig::default()).expect("server"));
    const THREADS: u64 = 4;
    const OPS: u64 = 30;
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread owns the id range [t*1000, t*1000+OPS): the
                // final index state is independent of interleaving.
                for i in 0..OPS {
                    let id = t * 1000 + i;
                    server.upsert(id, &traj_for(id)).expect("upsert");
                    if i % 3 == 0 {
                        let hits = server.knn(&traj_for(id), 5).expect("knn");
                        assert!(hits.len() <= 5);
                        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1), "sorted hits");
                    }
                    if i % 5 == 4 {
                        assert!(server.remove(id - 2).expect("remove"));
                    }
                    if t == 0 && i % 11 == 10 {
                        server.compact().expect("compact");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }

    // Brute-force oracle over the expected final live set, using the same
    // (cached) embeddings the server serves.
    let mut oracle: HashMap<u64, Vec<f32>> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..OPS {
            let id = t * 1000 + i;
            oracle.insert(id, server.embed(&traj_for(id)).expect("embed"));
        }
        for i in 0..OPS {
            if i % 5 == 4 {
                oracle.remove(&(t * 1000 + i - 2));
            }
        }
    }
    assert_eq!(server.stats().index_len, oracle.len());

    for qid in [0u64, 7, 1003, 2019, 3025] {
        let q = server.embed(&traj_for(qid)).expect("embed");
        let mut want: Vec<(u64, f64)> = oracle.iter().map(|(id, v)| (*id, l1(&q, v))).collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let got = server.knn(&traj_for(qid), 5).expect("knn");
        let got_ids: Vec<u64> = got.iter().map(|(id, _)| *id).collect();
        let want_ids: Vec<u64> = want.iter().take(5).map(|(id, _)| *id).collect();
        assert_eq!(got_ids, want_ids, "query {qid} diverged from oracle");
    }

    // And the same ground truth must survive a full compaction.
    server.compact().expect("compact");
    for qid in [0u64, 1003, 3025] {
        let q = server.embed(&traj_for(qid)).expect("embed");
        let mut want: Vec<(u64, f64)> = oracle.iter().map(|(id, v)| (*id, l1(&q, v))).collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let got: Vec<u64> = server
            .knn(&traj_for(qid), 5)
            .expect("knn")
            .iter()
            .map(|(id, _)| *id)
            .collect();
        let want_ids: Vec<u64> = want.iter().take(5).map(|(id, _)| *id).collect();
        assert_eq!(got, want_ids, "post-compact query {qid} diverged");
    }
    server.shutdown();
}

#[test]
fn quantized_server_mixed_ops_match_oracle_within_quant_error() {
    // The mixed-op oracle test against an SQ8-quantized MutableIndex: the
    // sealed part holds int8 codes after every compaction, so reported
    // distances may deviate from exact f32 by at most the codebook's L1
    // half-step bound — and every returned id must therefore rank within
    // (true kth distance + 2·bound) of the exact ordering.
    let server = Arc::new(
        Server::new(
            Arc::new(tiny_engine()),
            ServeConfig {
                quantization: Some(Quantization::Sq8),
                ..ServeConfig::default()
            },
        )
        .expect("server"),
    );
    const THREADS: u64 = 4;
    const OPS: u64 = 24;
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let id = t * 1000 + i;
                    server.upsert(id, &traj_for(id)).expect("upsert");
                    if i % 5 == 4 {
                        assert!(server.remove(id - 2).expect("remove"));
                    }
                    if t == 1 && i % 9 == 8 {
                        server.compact().expect("compact"); // quantizes the sealed part
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    server.compact().expect("compact");

    let mut oracle: HashMap<u64, Vec<f32>> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..OPS {
            let id = t * 1000 + i;
            oracle.insert(id, server.embed(&traj_for(id)).expect("embed"));
        }
        for i in 0..OPS {
            if i % 5 == 4 {
                oracle.remove(&(t * 1000 + i - 2));
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.index_len, oracle.len());
    // The quantized sealed part must actually be smaller than its f32
    // footprint (codes + codebook + lists vs 4 bytes/dim alone).
    let dim = server.engine().backend().dim();
    assert!(
        stats.index_memory_bytes < oracle.len() * dim * 4,
        "sq8 index ({} B) not smaller than f32 rows ({} B)",
        stats.index_memory_bytes,
        oracle.len() * dim * 4
    );

    let bound = sq8_l1_bound(oracle.values());
    const K: usize = 5;
    for qid in [0u64, 7, 1003, 2019, 3020] {
        let q = server.embed(&traj_for(qid)).expect("embed");
        let mut want: Vec<(u64, f64)> = oracle.iter().map(|(id, v)| (*id, l1(&q, v))).collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let kth = want[K.min(want.len()) - 1].1;
        let got = server.knn(&traj_for(qid), K).expect("knn");
        assert_eq!(got.len(), K.min(oracle.len()));
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "sorted hits");
        for (id, d) in &got {
            let exact = l1(&q, &oracle[id]);
            assert!(
                (d - exact).abs() <= bound + 1e-5,
                "query {qid}: id {id} reported {d}, exact {exact} (bound {bound})"
            );
            assert!(
                exact <= kth + 2.0 * bound + 1e-5,
                "query {qid}: id {id} ranks {exact} past kth {kth} + 2x{bound}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn pq_server_mixed_ops_match_oracle_near_exactly() {
    // The mixed-op oracle test extended to the PQ variant. At serve-test
    // scale the live set stays under 2^nbits rows, so every sub-quantizer
    // clamps ksub to the table size and k-means reproduces each training
    // subvector as its own centroid: sealed PQ rows decode (near-)exactly
    // and reported distances must match the oracle to f32 noise — which
    // is precisely the property that makes repeated PQ re-compactions
    // drift-free. Sealed rescoring is off so the raw ADC path is what is
    // being served.
    let server = Arc::new(
        Server::new(
            Arc::new(tiny_engine()),
            ServeConfig {
                quantization: Some(Quantization::Pq { m: 4, nbits: 8 }),
                rescore_sealed: false,
                ..ServeConfig::default()
            },
        )
        .expect("server"),
    );
    const THREADS: u64 = 4;
    const OPS: u64 = 24;
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let id = t * 1000 + i;
                    server.upsert(id, &traj_for(id)).expect("upsert");
                    if i % 5 == 4 {
                        assert!(server.remove(id - 2).expect("remove"));
                    }
                    if t == 1 && i % 9 == 8 {
                        server.compact().expect("compact"); // product-quantizes the sealed part
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    server.compact().expect("compact");

    let mut oracle: HashMap<u64, Vec<f32>> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..OPS {
            let id = t * 1000 + i;
            oracle.insert(id, server.embed(&traj_for(id)).expect("embed"));
        }
        for i in 0..OPS {
            if i % 5 == 4 {
                oracle.remove(&(t * 1000 + i - 2));
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.index_len, oracle.len());
    // (No memory assertion here: with ksub clamped to ~80 rows the
    // codebook dominates — PQ's footprint win only amortizes at scale,
    // which the index-scale bench gate measures. The code payload itself
    // is m = 4 bytes per vector vs 64 for f32.)

    const K: usize = 5;
    const EPS: f64 = 1e-3; // ksub == n ⇒ reconstruction is f32-noise only
    for qid in [0u64, 7, 1003, 2019, 3020] {
        let q = server.embed(&traj_for(qid)).expect("embed");
        let mut want: Vec<(u64, f64)> = oracle.iter().map(|(id, v)| (*id, l1(&q, v))).collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let kth = want[K.min(want.len()) - 1].1;
        let got = server.knn(&traj_for(qid), K).expect("knn");
        assert_eq!(got.len(), K.min(oracle.len()));
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "sorted hits");
        for (id, d) in &got {
            let exact = l1(&q, &oracle[id]);
            assert!(
                (d - exact).abs() <= EPS,
                "query {qid}: id {id} reported {d}, exact {exact}"
            );
            assert!(
                exact <= kth + 2.0 * EPS,
                "query {qid}: id {id} ranks {exact} past kth {kth}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn sealed_rescoring_serves_exact_distances_for_clean_ids() {
    // The ROADMAP fix: a quantized sealed part returns asymmetric
    // distances, but ids seeded from the engine's database still match
    // its cached embedding table — with rescore_sealed on (the default),
    // the server re-ranks those hits against the table and serves EXACT
    // distances. Ids upserted through the server are tracked as dirty
    // and keep their (error-bounded) asymmetric distances.
    let db: Vec<Trajectory> = (0..20).map(traj_for).collect();
    let engine = Arc::new(
        Engine::builder()
            .trajcl(
                {
                    let mut rng = StdRng::seed_from_u64(0);
                    let cfg = TrajClConfig::test_default();
                    TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng)
                },
                {
                    let mut rng = StdRng::seed_from_u64(0);
                    let cfg = TrajClConfig::test_default();
                    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
                    let grid = Grid::new(region, 100.0);
                    let table =
                        Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
                    Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len)
                },
            )
            .database(db.clone())
            .build()
            .expect("engine"),
    );
    let table_rows: Vec<Vec<f32>> = {
        let t = engine.embeddings().expect("cached table");
        (0..t.shape().rows()).map(|i| t.row(i).to_vec()).collect()
    };
    let metric = trajcl_index::Metric::L1;
    let server = Server::new(
        Arc::clone(&engine),
        ServeConfig {
            quantization: Some(Quantization::Sq8),
            ..ServeConfig::default() // rescore_sealed: true
        },
    )
    .expect("server");

    // Every seeded id is clean: served distances are bit-identical to
    // exact distances against the engine's cached table.
    for qid in [0u64, 7, 13] {
        let q = server.embed(&db[qid as usize]).expect("embed");
        for (id, d) in server.knn(&db[qid as usize], 5).expect("knn") {
            assert_eq!(
                d,
                metric.dist(&q, &table_rows[id as usize]),
                "query {qid}: clean id {id} not rescored to the exact distance"
            );
        }
    }

    // Replace id 3 through the server and seal it: the id is dirty, so
    // its hit keeps an asymmetric distance (within the codebook bound)
    // while every other id still rescores exactly.
    let new_traj = traj_for(500);
    server.upsert(3, &new_traj).expect("upsert");
    server.compact().expect("compact");
    let new_vec = server.embed(&new_traj).expect("embed");
    let mut live: Vec<Vec<f32>> = Vec::new();
    for (id, row) in table_rows.iter().enumerate() {
        live.push(if id == 3 {
            new_vec.clone()
        } else {
            row.clone()
        });
    }
    let bound = sq8_l1_bound(live.iter());
    let hits = server.knn(&new_traj, 3).expect("knn");
    assert_eq!(hits[0].0, 3, "the replaced vector is its own neighbour");
    assert!(
        (hits[0].1 - 0.0).abs() <= bound + 1e-5,
        "dirty id 3 must stay within the quantization bound"
    );
    for &(id, d) in &hits[1..] {
        assert_eq!(
            d,
            metric.dist(&new_vec, &table_rows[id as usize]),
            "clean id {id} must still rescore exactly"
        );
    }
}

#[test]
fn concurrent_embeds_fuse_into_batches_and_stay_correct() {
    let engine = Arc::new(tiny_engine());
    let server = Arc::new(
        Server::new(
            Arc::clone(&engine),
            ServeConfig {
                workers: 2,
                max_batch: 64,
                max_wait: std::time::Duration::from_millis(20),
                queue_cap: 256,
                cache_cap: 0, // force every request through the batcher
                ..ServeConfig::default()
            },
        )
        .expect("server"),
    );
    const THREADS: usize = 8;
    const PER: usize = 6;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..PER)
                    .map(|i| {
                        let traj = traj_for((t * PER + i) as u64);
                        (traj.clone(), server.embed(&traj).expect("embed"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut results = Vec::new();
    for h in handles {
        results.extend(h.join().expect("client thread"));
    }
    let stats = server.stats();
    assert_eq!(stats.batched_trajs as usize, THREADS * PER);
    assert!(
        stats.batches < (THREADS * PER) as u64,
        "no fusion happened: {} batches for {} jobs",
        stats.batches,
        stats.batched_jobs
    );
    // Batched results must match a direct single-trajectory forward.
    for (traj, served) in results {
        let direct = engine
            .embed_all(std::slice::from_ref(&traj))
            .expect("embed");
        let diff = l1(&served, direct.row(0));
        assert!(diff < 1e-4, "batched embedding diverged by {diff}");
    }
    server.shutdown();
}

#[test]
fn snapshot_readers_never_observe_torn_state() {
    // Writer churns upserts/removes/compactions; readers grab snapshots
    // behind a start barrier and assert (a) internal consistency, (b)
    // immutability of a held snapshot, (c) monotonic generations.
    let index = Arc::new(MutableIndex::new(4, Metric::L1, Some(3), 7));
    for id in 0..16u64 {
        index.upsert(id, vec![id as f32, 0.0, 0.0, 0.0]);
    }
    index.compact();
    const READERS: usize = 4;
    let barrier = Arc::new(Barrier::new(READERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let index = Arc::clone(&index);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            barrier.wait();
            for round in 0..60u64 {
                for id in 0..8u64 {
                    index.upsert(
                        1000 + round * 10 + id,
                        vec![round as f32, id as f32, 0.0, 0.0],
                    );
                }
                for id in 0..8u64 {
                    index.remove(1000 + round * 10 + id);
                }
                if round % 7 == 0 {
                    index.compact();
                }
            }
            stop.store(true, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let index = Arc::clone(&index);
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                barrier.wait();
                let mut last_gen = 0u64;
                let query = [3.0f32, 0.0, 0.0, 0.0];
                while !stop.load(Ordering::Acquire) {
                    let snap = index.snapshot();
                    // (a) internal consistency: the live-id set is duplicate
                    // free, matches len(), and a full search returns exactly
                    // min(k, len) hits drawn from it.
                    let ids = snap.live_ids();
                    assert_eq!(ids.len(), snap.len(), "len/live_ids torn");
                    assert!(ids.windows(2).all(|w| w[0] < w[1]), "duplicate live id");
                    let hits = snap.search(&query, ids.len() + 4, usize::MAX);
                    assert_eq!(hits.len(), ids.len(), "search size torn");
                    for (id, _) in &hits {
                        assert!(ids.binary_search(id).is_ok(), "hit id {id} not live");
                    }
                    // (b) a held snapshot is immutable under churn.
                    let again = snap.search(&query, ids.len() + 4, usize::MAX);
                    assert_eq!(hits, again, "held snapshot changed");
                    assert_eq!(snap.live_ids(), ids, "held snapshot changed ids");
                    // (c) generations only move forward.
                    assert!(snap.generation() >= last_gen, "generation went backwards");
                    last_gen = snap.generation();
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }
    // The sealed baseline (0..16) survived the churn untouched.
    let ids = index.snapshot().live_ids();
    assert_eq!(ids, (0..16u64).collect::<Vec<_>>());
}

/// Random vectors as flat f32 rows.
fn random_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // `compact()` must not change full-probe kNN results (rank tolerance
    // zero at full probe: both sides are exact over the same live set),
    // and partial-probe recall against the compacted ground truth stays
    // high.
    #[test]
    fn compaction_preserves_knn(
        n in 20usize..80,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let d = 6;
        let rows = random_rows(n, d, seed);
        let index = MutableIndex::new(d, Metric::L1, Some(5), seed);
        for (i, v) in rows.iter().enumerate() {
            index.upsert(i as u64, v.clone());
        }
        // Remove a deterministic fifth to exercise tombstone folding.
        for i in (0..n).step_by(5) {
            index.remove(i as u64);
        }
        let queries: Vec<Vec<f32>> = random_rows(4, d, seed ^ 0xabcd);
        let live = index.snapshot().live_ids().len();
        let before: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| index.search(q, k, usize::MAX).into_iter().map(|(id, _)| id).collect())
            .collect();
        index.compact();
        for (q, want) in queries.iter().zip(&before) {
            let after: Vec<u64> =
                index.search(q, k, usize::MAX).into_iter().map(|(id, _)| id).collect();
            prop_assert_eq!(&after, want, "full-probe kNN changed across compact()");
            // Partial probe (3 of 5 cells): every hit it returns must rank
            // within 3k of the true ordering — the IVF approximation may
            // shuffle the tail but must not surface far-away vectors.
            let truth: Vec<u64> = index
                .search(q, live, usize::MAX)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            for id in index.search(q, k, 3).into_iter().map(|(id, _)| id) {
                let rank = truth.iter().position(|&t| t == id).unwrap();
                prop_assert!(
                    rank < 3 * k,
                    "nprobe=3 returned id {} at true rank {} (k={})",
                    id,
                    rank,
                    k
                );
            }
        }
    }

    // The same compaction property against an SQ8-quantized MutableIndex:
    // sealing quantizes, so full-probe results are compared to the exact
    // oracle through the codebook's worst-case L1 error bound instead of
    // exact rank equality — every reported distance stays within `bound`
    // of the true distance, and no returned id ranks past the true kth
    // distance plus `2·bound`. Distances of buffer (unsealed) vectors
    // stay exact and merge consistently.
    #[test]
    fn quantized_compaction_preserves_knn_within_bound(
        n in 20usize..80,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let d = 6;
        let rows = random_rows(n, d, seed);
        let index = MutableIndex::with_options(
            d,
            Metric::L1,
            IndexOptions {
                nlist: Some(5),
                seed,
                quantization: Quantization::Sq8,
                rescore_factor: 4,
                ..Default::default()
            },
        );
        let mut live: HashMap<u64, Vec<f32>> = HashMap::new();
        for (i, v) in rows.iter().enumerate() {
            index.upsert(i as u64, v.clone());
            live.insert(i as u64, v.clone());
        }
        for i in (0..n).step_by(5) {
            index.remove(i as u64);
            live.remove(&(i as u64));
        }
        let bound = sq8_l1_bound(live.values());
        let queries: Vec<Vec<f32>> = random_rows(4, d, seed ^ 0xabcd);

        // Two compactions: the second re-quantizes already-decoded rows,
        // which must not drift the error past the same single bound.
        for round in 0..2 {
            index.compact();
            prop_assert_eq!(index.len(), live.len());
            for q in &queries {
                let mut want: Vec<(u64, f64)> =
                    live.iter().map(|(id, v)| (*id, l1(q, v))).collect();
                want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let kth = want[k.min(want.len()) - 1].1;
                for (id, dist) in index.search(q, k, usize::MAX) {
                    let exact = l1(q, &live[&id]);
                    prop_assert!(
                        (dist - exact).abs() <= bound + 1e-5,
                        "round {}: id {} reported {} vs exact {} (bound {})",
                        round, id, dist, exact, bound
                    );
                    prop_assert!(
                        exact <= kth + 2.0 * bound + 1e-5,
                        "round {}: id {} at {} ranks past kth {} + 2x{}",
                        round, id, exact, kth, bound
                    );
                }
            }
        }

        // Fresh buffer writes on top of the quantized sealed part: a
        // vector upserted after compaction is exact, so querying it must
        // return itself at distance 0 ahead of quantized competitors.
        let probe: Vec<f32> = (0..d).map(|j| 3.0 + j as f32).collect();
        index.upsert(9999, probe.clone());
        let hits = index.search(&probe, 1, usize::MAX);
        prop_assert_eq!(hits[0], (9999u64, 0.0));
    }
}
