//! Chaos suite: the fleet front-end under injected faults.
//!
//! Everything here is seeded and deterministic — the fault schedules
//! come from [`trajcl_serve::ChaosPlan`]'s pure per-frame function, and
//! the only timing dependence is on deadlines *holding* (assertions are
//! "within the budget", never "at exactly t").
//!
//! The headline test is the PR's acceptance scenario: with one of four
//! shard servers killed mid-pipelined-query, the front-end keeps
//! answering within its configured deadline with `"partial":true` and
//! correct `shards_ok`/`shards_total`, and returns to bit-exact
//! unsharded-oracle-equivalent answers after the shard restarts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_index::shard_for;
use trajcl_serve::net::listen_with;
use trajcl_serve::proto::{read_frame, write_frame};
use trajcl_serve::{
    listen, ChaosPlan, ChaosProxy, Client, ClientOptions, Fleet, FleetConfig, FrameHandler,
    NetServer, ServeConfig, Server, SessionOptions, ShardHealth,
};

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A tiny deterministic TrajCL engine (no pre-loaded database). Every
/// shard and the oracle build the SAME engine (seed 0), so embeddings —
/// and therefore wire-formatted distances — are bit-identical across
/// processes.
fn tiny_engine() -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = TrajClConfig::test_default();
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
    let grid = Grid::new(region, 100.0);
    let table = trajcl_tensor::Tensor::randn(
        trajcl_tensor::Shape::d2(grid.num_cells(), cfg.dim),
        0.0,
        0.5,
        &mut rng,
    );
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .build()
        .expect("engine")
}

/// Well-separated synthetic trajectories (same family as the net suite).
fn traj_for(id: u64) -> Trajectory {
    let y0 = 10.0 + (id % 1000) as f64 * 9.7 + (id / 1000) as f64 * 211.0;
    (0..6)
        .map(|t| Point::new(40.0 + t as f64 * 120.0, y0 + t as f64 * 3.0))
        .collect()
}

fn traj_json(t: &Trajectory) -> String {
    let pts: Vec<String> = t
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    format!("[{}]", pts.join(","))
}

fn upsert_payload(id: u64) -> String {
    format!(
        "{{\"op\":\"upsert\",\"id\":{id},\"traj\":{}}}",
        traj_json(&traj_for(id))
    )
}

fn knn_payload(qid: u64, k: usize) -> String {
    format!(
        "{{\"op\":\"knn\",\"traj\":{},\"k\":{k}}}",
        traj_json(&traj_for(qid))
    )
}

/// One downstream "process": a single-shard server on a free TCP port.
struct ShardServer {
    server: Arc<Server>,
    net: NetServer,
}

impl ShardServer {
    fn spawn() -> ShardServer {
        let server =
            Arc::new(Server::new(Arc::new(tiny_engine()), ServeConfig::default()).expect("server"));
        let net = listen(Arc::clone(&server), "127.0.0.1:0", 2).expect("listen");
        ShardServer { server, net }
    }

    /// Like [`ShardServer::spawn`], but durable: writes go through a
    /// write-ahead log under `dir` (recovered on spawn if it exists).
    fn spawn_wal(dir: &std::path::Path) -> ShardServer {
        let cfg = ServeConfig {
            wal: Some(trajcl_serve::WalConfig::new(dir)),
            ..ServeConfig::default()
        };
        let server = Arc::new(Server::new(Arc::new(tiny_engine()), cfg).expect("server"));
        let net = listen(Arc::clone(&server), "127.0.0.1:0", 2).expect("listen");
        ShardServer { server, net }
    }

    fn addr(&self) -> String {
        self.net.local_addr().to_string()
    }

    /// SIGKILL-equivalent: the listener stops and every connection is
    /// severed without any protocol goodbye.
    fn kill(self) {
        self.net.shutdown();
        self.server.shutdown();
    }
}

/// A tight fleet config: everything fails (and recovers) fast enough
/// for a test, with real retry/backoff/probing behaviour.
fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        client: ClientOptions {
            connect_timeout: Some(ms(250)),
            read_timeout: Some(ms(1000)),
            write_timeout: Some(ms(1000)),
        },
        op_deadline: ms(2500),
        retries: 1,
        backoff_base: ms(10),
        backoff_max: ms(40),
        down_after: 2,
        probe_interval: ms(100),
        fail_closed: false,
        jitter_seed: 0xC0FFEE,
    }
}

/// The `"hits":[...]` tail of a knn response — the part that must be
/// bit-identical between the fleet and the unsharded oracle.
fn hits_of(resp: &str) -> &str {
    let at = resp
        .find("\"hits\":")
        .unwrap_or_else(|| panic!("no hits in {resp}"));
    resp[at..].trim_end_matches('}')
}

fn wait_for<F: FnMut() -> bool>(mut cond: F, budget: Duration, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < budget, "timed out waiting for {what}");
        std::thread::sleep(ms(25));
    }
}

/// The acceptance scenario (ISSUE 9): kill 1 of 4 shards mid-pipelined
/// queries → bounded partial answers; restart it → re-admission through
/// half-open probing and bit-exact answers again.
#[test]
fn fleet_degrades_on_shard_death_and_recovers_bit_exact() {
    const NSHARDS: usize = 4;
    const N: u64 = 48;
    const QIDS: [u64; 4] = [0, 5, 17, 33];

    // Four shard "processes", each behind a fault-free chaos proxy so the
    // fleet-visible address survives a restart onto a fresh port.
    let mut shards: Vec<Option<ShardServer>> =
        (0..NSHARDS).map(|_| Some(ShardServer::spawn())).collect();
    let proxies: Vec<ChaosProxy> = shards
        .iter()
        .map(|s| ChaosProxy::start(&s.as_ref().unwrap().addr(), ChaosPlan::none(1)).expect("proxy"))
        .collect();
    let addrs: Vec<String> = proxies.iter().map(|p| p.local_addr().to_string()).collect();

    let fleet = Arc::new(Fleet::connect(&addrs, fleet_cfg()).expect("fleet"));
    let front = listen_with(
        Arc::clone(&fleet),
        "127.0.0.1:0",
        4,
        SessionOptions::default(),
    )
    .expect("front-end listen");
    let mut client = Client::connect(front.local_addr()).expect("connect front");

    // The unsharded oracle holds the SAME data in one process.
    let oracle = ShardServer::spawn();
    let mut oracle_client = Client::connect(&oracle.addr()).expect("connect oracle");

    for id in 0..N {
        let r = client.call(&upsert_payload(id)).expect("fleet upsert");
        assert!(r.contains("\"replaced\":false"), "{r}");
        let r = oracle_client
            .call(&upsert_payload(id))
            .expect("oracle upsert");
        assert!(r.contains("\"replaced\":false"), "{r}");
    }
    let r = client.call("{\"op\":\"compact\"}").expect("fleet compact");
    assert!(r.contains(&format!("\"sealed\":{N}")), "{r}");
    oracle_client
        .call("{\"op\":\"compact\"}")
        .expect("oracle compact");

    // Healthy fleet: full answers, bit-exact against the oracle.
    for qid in QIDS {
        let f = client.call(&knn_payload(qid, 5)).expect("fleet knn");
        assert!(
            f.contains("\"partial\":false,\"shards_ok\":4,\"shards_total\":4"),
            "{f}"
        );
        let o = oracle_client
            .call(&knn_payload(qid, 5))
            .expect("oracle knn");
        assert_eq!(hits_of(&f), hits_of(&o), "query {qid}");
    }
    // Aggregated stats see every vector and all-Up health.
    let stats = client.call("{\"op\":\"stats\"}").expect("stats");
    assert!(stats.contains(&format!("\"size\":{N}")), "{stats}");
    assert!(
        stats.contains("\"health\":[\"up\",\"up\",\"up\",\"up\"]"),
        "{stats}"
    );

    // Kill shard 0 mid-pipelined-query: queue six queries, kill, drain.
    const BATCH: u64 = 6;
    for req in 0..BATCH {
        let payload = format!(
            "{{\"req\":{req},\"op\":\"knn\",\"traj\":{},\"k\":5}}",
            traj_json(&traj_for(QIDS[(req % 4) as usize]))
        );
        client.send(&payload).expect("send");
    }
    shards[0].take().unwrap().kill();
    let drain_started = Instant::now();
    for _ in 0..BATCH {
        let r = client.recv().expect("recv").expect("open front connection");
        // Depending on the race each answer is full or partial — but it
        // IS an answer, never a hang and never a transport error.
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    assert!(
        drain_started.elapsed() < Duration::from_secs(20),
        "pipelined drain took {:?} — a downstream read blocked past its deadline",
        drain_started.elapsed()
    );

    // Settled degraded state: partial answers with correct counts,
    // within the per-op deadline, and the survivors' hits still exact.
    let one = Instant::now();
    let f = client.call(&knn_payload(QIDS[1], 5)).expect("degraded knn");
    assert!(
        one.elapsed() < fleet_cfg().op_deadline + Duration::from_secs(2),
        "degraded knn took {:?}",
        one.elapsed()
    );
    assert!(
        f.contains("\"partial\":true,\"shards_ok\":3,\"shards_total\":4"),
        "{f}"
    );
    wait_for(
        || fleet.health()[0] == ShardHealth::Down,
        Duration::from_secs(10),
        "shard 0 marked down",
    );
    // Writes owned by the dead shard error in-band, immediately.
    let owned_by_0: Vec<u64> = (0..N).filter(|&id| shard_for(id, NSHARDS) == 0).collect();
    assert!(!owned_by_0.is_empty(), "hash sent no ids to shard 0?");
    let w = Instant::now();
    let r = client
        .call(&upsert_payload(owned_by_0[0]))
        .expect("refused write still answers");
    assert!(r.contains("\"ok\":false"), "{r}");
    assert!(r.contains("down"), "{r}");
    assert!(w.elapsed() < Duration::from_secs(2), "{:?}", w.elapsed());

    // Restart shard 0 (fresh process, fresh port, EMPTY index) behind
    // the same front address; the prober re-admits it half-open.
    let restarted = ShardServer::spawn();
    proxies[0].set_upstream(&restarted.addr());
    wait_for(
        || fleet.health()[0] == ShardHealth::Up,
        Duration::from_secs(10),
        "shard 0 re-admitted",
    );

    // Re-drive the lost partition through the fleet, then the answers
    // must be bit-exact against the oracle again.
    for &id in &owned_by_0 {
        let r = client.call(&upsert_payload(id)).expect("re-upsert");
        assert!(r.contains("\"replaced\":false"), "{r}");
    }
    let r = client.call("{\"op\":\"compact\"}").expect("compact");
    assert!(r.contains("\"partial\":false"), "{r}");
    for qid in QIDS {
        let f = client.call(&knn_payload(qid, 5)).expect("recovered knn");
        assert!(
            f.contains("\"partial\":false,\"shards_ok\":4,\"shards_total\":4"),
            "{f}"
        );
        let o = oracle_client
            .call(&knn_payload(qid, 5))
            .expect("oracle knn");
        assert_eq!(hits_of(&f), hits_of(&o), "query {qid} after recovery");
    }

    front.shutdown();
    fleet.shutdown();
    for p in proxies {
        p.shutdown();
    }
    restarted.kill();
    for s in shards.into_iter().flatten() {
        s.kill();
    }
    oracle.kill();
}

/// The `"req":N` echo of a response (pipelined-batch bookkeeping).
fn req_of(resp: &str) -> usize {
    let at = resp
        .find("\"req\":")
        .unwrap_or_else(|| panic!("no req echo in {resp}"))
        + "\"req\":".len();
    resp[at..]
        .bytes()
        .take_while(u8::is_ascii_digit)
        .fold(0, |acc, b| acc * 10 + usize::from(b - b'0'))
}

/// ROADMAP fleet follow-on (a), closed by the WAL: a durable shard is
/// killed mid-pipelined-upsert, restarted on the same WAL directory,
/// and recovers **every acknowledged write by itself** — no operator
/// replay of the lost partition. After the in-flight batch is re-driven
/// (idempotent), the fleet's answers are bit-exact against an
/// always-alive unsharded oracle.
#[test]
fn shard_restart_with_wal_recovers_acked_writes() {
    const NSHARDS: usize = 2;
    const N: u64 = 32;
    let wal_dir = std::env::temp_dir().join(format!("trajcl-chaos-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    // Shard 0 is durable; shard 1 and the oracle are plain in-memory
    // servers. Both shards sit behind fault-free proxies so the
    // fleet-visible address survives shard 0's restart.
    let shard0 = ShardServer::spawn_wal(&wal_dir);
    let shard1 = ShardServer::spawn();
    let proxies = [
        ChaosProxy::start(&shard0.addr(), ChaosPlan::none(1)).expect("proxy 0"),
        ChaosProxy::start(&shard1.addr(), ChaosPlan::none(2)).expect("proxy 1"),
    ];
    let addrs: Vec<String> = proxies.iter().map(|p| p.local_addr().to_string()).collect();
    let fleet = Arc::new(Fleet::connect(&addrs, fleet_cfg()).expect("fleet"));
    let front = listen_with(
        Arc::clone(&fleet),
        "127.0.0.1:0",
        4,
        SessionOptions::default(),
    )
    .expect("front-end listen");
    let mut client = Client::connect(front.local_addr()).expect("connect front");
    let oracle = ShardServer::spawn();
    let mut oracle_client = Client::connect(&oracle.addr()).expect("connect oracle");

    for id in 0..N {
        let r = client.call(&upsert_payload(id)).expect("fleet upsert");
        assert!(r.contains("\"replaced\":false"), "{r}");
        oracle_client
            .call(&upsert_payload(id))
            .expect("oracle upsert");
    }
    // Compact checkpoints shard 0's WAL (snapshot + log truncate): the
    // seeded ids now live in the checkpoint, not the log.
    let r = client.call("{\"op\":\"compact\"}").expect("fleet compact");
    assert!(r.contains("\"ok\":true"), "{r}");
    oracle_client
        .call("{\"op\":\"compact\"}")
        .expect("oracle compact");

    // Pipeline 8 fresh upserts owned by shard 0, kill it mid-batch, and
    // record which of them the fleet actually acknowledged.
    let fresh: Vec<u64> = (1000..)
        .filter(|&id| shard_for(id, NSHARDS) == 0)
        .take(8)
        .collect();
    for (req, &id) in fresh.iter().enumerate() {
        let payload = format!(
            "{{\"req\":{req},\"op\":\"upsert\",\"id\":{id},\"traj\":{}}}",
            traj_json(&traj_for(id))
        );
        client.send(&payload).expect("send");
    }
    shard0.kill();
    let mut acked: Vec<u64> = Vec::new();
    for _ in 0..fresh.len() {
        let r = client.recv().expect("recv").expect("open front connection");
        // An in-band error is the fleet telling the client the write did
        // NOT happen; an ack means the shard fsync'd it before dying.
        if r.contains("\"ok\":true") {
            acked.push(fresh[req_of(&r)]);
        }
    }
    wait_for(
        || fleet.health()[0] == ShardHealth::Down,
        Duration::from_secs(10),
        "shard 0 marked down",
    );

    // Restart on the SAME WAL directory: the shard recovers its own
    // partition (checkpoint + log tail) before answering the prober.
    let restarted = ShardServer::spawn_wal(&wal_dir);
    let rec = restarted.server.wal_recovery().expect("recovery ran");
    assert!(
        rec.checkpoint_rows > 0,
        "compact must have checkpointed the seeded partition: {rec:?}"
    );
    proxies[0].set_upstream(&restarted.addr());
    wait_for(
        || fleet.health()[0] == ShardHealth::Up,
        Duration::from_secs(10),
        "shard 0 re-admitted",
    );

    // Durability invariant: every acknowledged write survived the kill —
    // its self-query answers through the fleet at exactly distance 0.
    // So did the checkpointed seeded partition.
    let seeded_on_0: Vec<u64> = (0..N).filter(|&id| shard_for(id, NSHARDS) == 0).collect();
    assert!(
        !seeded_on_0.is_empty(),
        "hash sent no seeded ids to shard 0?"
    );
    for &id in acked.iter().chain(seeded_on_0.iter().take(3)) {
        let f = client.call(&knn_payload(id, 1)).expect("recovered knn");
        assert!(
            f.contains(&format!("\"index\":{id}")) && f.contains("\"distance\":0.000000"),
            "acked write {id} lost after restart: {f}"
        );
    }

    // Re-drive the whole in-flight batch (idempotent — acked ids are
    // replaced, lost ones inserted), mirror it into the oracle, compact
    // both, and the merged answers must be bit-exact again.
    for &id in &fresh {
        let r = client.call(&upsert_payload(id)).expect("re-upsert");
        assert!(r.contains("\"ok\":true"), "{r}");
        oracle_client
            .call(&upsert_payload(id))
            .expect("oracle upsert");
    }
    let r = client.call("{\"op\":\"compact\"}").expect("fleet compact");
    assert!(r.contains("\"partial\":false"), "{r}");
    oracle_client
        .call("{\"op\":\"compact\"}")
        .expect("oracle compact");
    for qid in [0u64, 7, 17, fresh[0], fresh[5]] {
        let f = client.call(&knn_payload(qid, 5)).expect("recovered knn");
        assert!(
            f.contains("\"partial\":false,\"shards_ok\":2,\"shards_total\":2"),
            "{f}"
        );
        let o = oracle_client
            .call(&knn_payload(qid, 5))
            .expect("oracle knn");
        assert_eq!(hits_of(&f), hits_of(&o), "query {qid} after recovery");
    }

    front.shutdown();
    fleet.shutdown();
    for p in proxies {
        p.shutdown();
    }
    restarted.kill();
    shard1.kill();
    oracle.kill();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Frame-level faults (drop / garble / truncate / delay) between the
/// fleet and its only shard: every request is answered or in-band
/// errored within bounds, state converges, and the final index matches
/// a direct unproxied view bit-for-bit.
#[test]
fn fleet_survives_frame_faults_and_converges() {
    let shard = ShardServer::spawn();
    let plan = ChaosPlan {
        drop_per_mille: 50,
        garble_per_mille: 30,
        truncate_per_mille: 20,
        delay_per_mille: 50,
        delay: ms(20),
        ..ChaosPlan::none(2024)
    };
    let proxy = ChaosProxy::start(&shard.addr(), plan).expect("proxy");
    let mut cfg = fleet_cfg();
    cfg.client.read_timeout = Some(ms(300)); // dropped frames fail fast
    cfg.retries = 3;
    // The startup probe itself runs through the faulty proxy; its frames
    // can be faulted, so allow a few (deterministic) attempts.
    let addrs = [proxy.local_addr().to_string()];
    let fleet = (0..5)
        .find_map(|_| Fleet::connect(&addrs, cfg).ok())
        .expect("fleet never connected through the chaos proxy");

    const N: u64 = 40;
    let mut in_band_errors = 0u32;
    for id in 0..N {
        // The fleet retries transport faults internally; a call that
        // still fails surfaces in-band and we just try again — exactly
        // what a real writer does.
        let mut done = false;
        for _ in 0..20 {
            let r = fleet.handle_frame(&upsert_payload(id));
            if r.contains("\"ok\":true") {
                done = true;
                break;
            }
            in_band_errors += 1;
        }
        assert!(done, "upsert {id} never succeeded");
    }
    for _ in 0..20 {
        if fleet
            .handle_frame("{\"op\":\"compact\"}")
            .contains("\"ok\":true")
        {
            break;
        }
    }

    // The fleet's view converges with the direct, unproxied view.
    let mut direct = Client::connect(&shard.addr()).expect("direct connect");
    for qid in [1u64, 9, 23] {
        let d = direct.call(&knn_payload(qid, 5)).expect("direct knn");
        let mut f = String::new();
        for _ in 0..20 {
            f = fleet.handle_frame(&knn_payload(qid, 5));
            if f.contains("\"ok\":true") {
                break;
            }
        }
        assert!(f.contains("\"ok\":true"), "{f}");
        assert_eq!(hits_of(&f), hits_of(&d), "query {qid}");
    }
    assert!(
        proxy.faults_injected() > 0,
        "the plan injected nothing — the test exercised no fault path"
    );
    // The seeded schedule really did bite (and the fleet absorbed it).
    eprintln!(
        "chaos: {} frames forwarded, {} faults injected, {} in-band errors surfaced",
        proxy.frames_forwarded(),
        proxy.faults_injected(),
        in_band_errors
    );

    fleet.shutdown();
    proxy.shutdown();
    shard.kill();
}

/// A shard that accepts, reads, answers `ping` — and silently swallows
/// everything else. The deadliest failure mode: TCP healthy, probes
/// green, data path dead. Reads must still complete within the op
/// budget, marked partial.
#[test]
fn stalled_shard_hits_read_deadline_and_degrades() {
    // The stalling listener.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let stall_addr = listener.local_addr().expect("addr").to_string();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stall_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            listener.set_nonblocking(false).expect("blocking listener");
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let Ok((conn, _)) = listener.accept() else {
                    break;
                };
                std::thread::spawn(move || {
                    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
                    let mut writer = conn;
                    while let Ok(Some(payload)) = read_frame(&mut reader) {
                        // Anything but a ping: swallowed. The caller waits.
                        if payload.contains("\"op\":\"ping\"")
                            && write_frame(&mut writer, "{\"ok\":true,\"pong\":true}").is_err()
                        {
                            return;
                        }
                    }
                });
            }
        })
    };

    let real = ShardServer::spawn();
    let mut cfg = fleet_cfg();
    cfg.client.read_timeout = Some(ms(300));
    cfg.op_deadline = ms(1000);
    let addrs = [real.addr(), stall_addr.clone()];
    let fleet = Fleet::connect(&addrs, cfg).expect("fleet");

    // Seed only ids the REAL shard owns (writes to the staller would
    // themselves stall into their deadline — separately tested budget).
    let mine: Vec<u64> = (0..40).filter(|&id| shard_for(id, 2) == 0).collect();
    for &id in &mine {
        let r = fleet.handle_frame(&upsert_payload(id));
        assert!(r.contains("\"ok\":true"), "{r}");
    }

    // The scattered read: the staller burns its read deadline, the
    // answer still arrives within the op budget, marked partial.
    let started = Instant::now();
    let f = fleet.handle_frame(&knn_payload(mine[0], 3));
    let elapsed = started.elapsed();
    assert!(
        f.contains("\"partial\":true,\"shards_ok\":1,\"shards_total\":2"),
        "{f}"
    );
    assert!(f.contains(&format!("\"index\":{}", mine[0])), "{f}");
    assert!(
        elapsed < Duration::from_secs(4),
        "stalled-shard knn took {elapsed:?}"
    );
    // The staller is now marked unhealthy; pings keep it from flapping
    // all the way out, but it must not be Up.
    assert_ne!(fleet.health()[1], ShardHealth::Up, "{:?}", fleet.health());

    fleet.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Release);
    let _ = std::net::TcpStream::connect(&stall_addr); // wake accept()
    let _ = stall_thread.join();
    real.kill();
}

/// Fail-closed fleets refuse degraded reads instead of answering
/// partially; writes to a down shard are refused in-band either way.
#[test]
fn fail_closed_refuses_partial_answers() {
    let real = ShardServer::spawn();
    let mut cfg = fleet_cfg();
    cfg.fail_closed = true;
    // Port 1 refuses connections: shard 1 is Down from the start.
    let addrs = [real.addr(), "127.0.0.1:1".to_string()];
    let fleet = Fleet::connect(&addrs, cfg).expect("one live shard suffices");
    assert_eq!(fleet.health()[1], ShardHealth::Down);

    let id_live = (0..64).find(|&id| shard_for(id, 2) == 0).unwrap();
    let r = fleet.handle_frame(&upsert_payload(id_live));
    assert!(r.contains("\"ok\":true"), "{r}");

    let r = fleet.handle_frame(&knn_payload(id_live, 1));
    assert!(r.contains("\"ok\":false"), "{r}");
    assert!(r.contains("fail-closed"), "{r}");

    let id_dead = (0..64).find(|&id| shard_for(id, 2) == 1).unwrap();
    let r = fleet.handle_frame(&upsert_payload(id_dead));
    assert!(r.contains("\"ok\":false"), "{r}");
    assert!(r.contains("down"), "{r}");

    fleet.shutdown();
    real.kill();
}

/// `kill_after_frames`: the proxy severs the connection after its frame
/// budget — a plain client sees the documented mid-stream death, and
/// the server keeps serving fresh connections.
#[test]
fn kill_after_frames_severs_the_connection() {
    let shard = ShardServer::spawn();
    let plan = ChaosPlan {
        kill_after_frames: Some(4),
        ..ChaosPlan::none(7)
    };
    let proxy = ChaosProxy::start(&shard.addr(), plan).expect("proxy");

    let mut client = Client::connect_with(
        proxy.local_addr(),
        &ClientOptions {
            read_timeout: Some(ms(500)),
            ..ClientOptions::default()
        },
    )
    .expect("connect");
    // 2 round trips = 4 frames: both succeed, the 5th frame dies.
    for _ in 0..2 {
        let r = client.call("{\"op\":\"ping\"}").expect("ping");
        assert!(r.contains("\"pong\":true"), "{r}");
    }
    let dead = client.call("{\"op\":\"ping\"}");
    assert!(dead.is_err(), "{dead:?}");

    // A fresh connection through the proxy gets its own frame budget.
    let mut fresh = Client::connect(proxy.local_addr()).expect("reconnect");
    let r = fresh
        .call("{\"op\":\"ping\"}")
        .expect("ping after reconnect");
    assert!(r.contains("\"pong\":true"), "{r}");

    proxy.shutdown();
    shard.kill();
}
