//! Transport suite for `trajcl-serve`: mixed mutation/query traffic over
//! real TCP connections against the in-process view, pipelined
//! out-of-order response matching, torn-frame / mid-frame-disconnect
//! rejection, and a unix-socket smoke test.

use std::io::{Read as _, Write as _};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_serve::{listen, Client, ServeConfig, Server};
use trajcl_tensor::{Shape, Tensor};

/// A tiny deterministic TrajCL engine (no pre-loaded database).
fn tiny_engine() -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = TrajClConfig::test_default();
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
    let grid = Grid::new(region, 100.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .build()
        .expect("engine")
}

/// A well-separated synthetic trajectory, injective over the id ranges
/// used here (see the concurrency suite).
fn traj_for(id: u64) -> Trajectory {
    let y0 = 10.0 + (id % 1000) as f64 * 9.7 + (id / 1000) as f64 * 211.0;
    (0..6)
        .map(|t| Point::new(40.0 + t as f64 * 120.0, y0 + t as f64 * 3.0))
        .collect()
}

/// The trajectory as the protocol's `[[x,y],...]` array.
fn traj_json(t: &Trajectory) -> String {
    let pts: Vec<String> = t
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    format!("[{}]", pts.join(","))
}

fn sharded_server(shards: usize) -> Arc<Server> {
    Arc::new(
        Server::new(
            Arc::new(tiny_engine()),
            ServeConfig {
                shards: Some(shards),
                ..ServeConfig::default()
            },
        )
        .expect("server"),
    )
}

#[test]
fn tcp_mixed_ops_match_the_in_process_view() {
    let server = sharded_server(3);
    let net = listen(Arc::clone(&server), "127.0.0.1:0", 2).expect("listen");
    let addr = net.local_addr().to_string();

    const THREADS: u64 = 3;
    const OPS: u64 = 20;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // Each connection owns the id range [t*1000, t*1000+OPS):
                // the final index state is interleaving-independent.
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..OPS {
                    let id = t * 1000 + i;
                    let reply = client
                        .call(&format!(
                            "{{\"op\":\"upsert\",\"id\":{id},\"traj\":{}}}",
                            traj_json(&traj_for(id))
                        ))
                        .expect("upsert");
                    assert!(reply.contains("\"replaced\":false"), "{reply}");
                    if i % 4 == 0 {
                        let reply = client
                            .call(&format!(
                                "{{\"op\":\"knn\",\"traj\":{},\"k\":3}}",
                                traj_json(&traj_for(id))
                            ))
                            .expect("knn");
                        assert!(reply.contains("\"ok\":true"), "{reply}");
                    }
                    if i % 5 == 4 {
                        let reply = client
                            .call(&format!("{{\"op\":\"remove\",\"id\":{}}}", id - 2))
                            .expect("remove");
                        assert!(reply.contains("\"removed\":true"), "{reply}");
                    }
                    if t == 0 && i % 7 == 6 {
                        let reply = client.call("{\"op\":\"compact\"}").expect("compact");
                        assert!(reply.contains("\"sealed\":"), "{reply}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Every thread upserted OPS ids and removed OPS/5 of them.
    let live = (THREADS * (OPS - OPS / 5)) as usize;
    assert_eq!(server.stats().index_len, live);

    // The wire view agrees with the in-process one: stats fields and,
    // hit for hit (same {:.6} formatting), kNN results.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.call("{\"op\":\"stats\"}").expect("stats");
    assert!(stats.contains(&format!("\"size\":{live}")), "{stats}");
    assert!(stats.contains("\"shards\":3"), "{stats}");
    for qid in [0u64, 7, 1003, 2011] {
        let reply = client
            .call(&format!(
                "{{\"op\":\"knn\",\"traj\":{},\"k\":5}}",
                traj_json(&traj_for(qid))
            ))
            .expect("knn");
        let want: Vec<String> = server
            .knn(&traj_for(qid), 5)
            .expect("knn")
            .iter()
            .enumerate()
            .map(|(rank, (id, dist))| {
                format!(
                    "{{\"rank\":{},\"index\":{id},\"distance\":{dist:.6}}}",
                    rank + 1
                )
            })
            .collect();
        assert!(
            reply.contains(&format!("\"hits\":[{}]", want.join(","))),
            "wire hits diverged from in-process for query {qid}:\n{reply}\nwant {want:?}"
        );
    }

    net.shutdown();
    server.shutdown();
}

#[test]
fn pipelined_responses_match_by_req_echo() {
    let server = sharded_server(2);
    // 4 handler threads per connection: responses genuinely race.
    let net = listen(Arc::clone(&server), "127.0.0.1:0", 4).expect("listen");
    let mut client = Client::connect(net.local_addr()).expect("connect");

    const BATCH: u64 = 24;
    for req in 0..BATCH {
        // Mix op types so completion order differs from send order.
        let payload = match req % 3 {
            0 => format!(
                "{{\"req\":{req},\"op\":\"upsert\",\"id\":{req},\"traj\":{}}}",
                traj_json(&traj_for(req))
            ),
            1 => format!(
                "{{\"req\":{req},\"op\":\"knn\",\"traj\":{},\"k\":2}}",
                traj_json(&traj_for(req))
            ),
            _ => format!("{{\"req\":{req},\"op\":\"stats\"}}"),
        };
        client.send(&payload).expect("send");
    }
    let mut seen = vec![false; BATCH as usize];
    for _ in 0..BATCH {
        let frame = client.recv().expect("recv").expect("open connection");
        assert!(frame.contains("\"ok\":true"), "{frame}");
        let req = trajcl_serve::json::parse(&frame)
            .expect("response json")
            .get("req")
            .and_then(|r| r.as_u64())
            .expect("req echo") as usize;
        assert!(!seen[req], "req {req} answered twice");
        seen[req] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "every request answered exactly once"
    );

    net.shutdown();
    server.shutdown();
}

/// Dials raw TCP, writes `bytes`, and returns what the server sends back
/// until EOF (a closed connection reads as 0 bytes).
fn raw_exchange(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(bytes).expect("write");
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf); // reset instead of FIN is fine too
    buf
}

#[test]
fn torn_frames_kill_only_their_connection() {
    let server = sharded_server(2);
    let net = listen(Arc::clone(&server), "127.0.0.1:0", 1).expect("listen");
    let addr = net.local_addr().to_string();

    // A garbage header: the server must close the connection without
    // answering (framing errors are not recoverable in-stream).
    let reply = raw_exchange(&addr, b"not a length\n{\"op\":\"stats\"}\n");
    assert!(
        reply.is_empty(),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // An over-limit length is rejected the same way.
    let reply = raw_exchange(&addr, b"99999999\n");
    assert!(
        reply.is_empty(),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // A mid-frame disconnect: header promises 64 bytes, the peer vanishes
    // after 10. The session must wind down without poisoning anything.
    {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.write_all(b"64\n{\"op\":\"st").expect("write");
    } // dropped here

    // The listener and other connections are unaffected: a fresh client
    // completes a full round trip.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client.call("{\"op\":\"stats\"}").expect("stats");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    net.shutdown();
    server.shutdown();
}

#[test]
fn ping_answers_with_echo() {
    let server = sharded_server(2);
    let net = listen(Arc::clone(&server), "127.0.0.1:0", 1).expect("listen");
    let mut client = Client::connect(net.local_addr()).expect("connect");

    let reply = client.call("{\"op\":\"ping\"}").expect("ping");
    assert_eq!(reply, "{\"ok\":true,\"pong\":true}");
    let reply = client.call("{\"req\":7,\"op\":\"ping\"}").expect("ping");
    assert_eq!(reply, "{\"req\":7,\"ok\":true,\"pong\":true}");
    // A probe is not a data-path request: the counter must not move.
    assert_eq!(server.stats().requests, 0);

    net.shutdown();
    server.shutdown();
}

#[test]
fn idle_sessions_are_reaped_but_active_ones_survive() {
    let engine = Arc::new(tiny_engine());
    let server = Arc::new(
        Server::new(
            Arc::clone(&engine),
            ServeConfig {
                shards: Some(2),
                idle_timeout: Some(std::time::Duration::from_millis(250)),
                ..ServeConfig::default()
            },
        )
        .expect("server"),
    );
    let net = listen(Arc::clone(&server), "127.0.0.1:0", 1).expect("listen");
    let addr = net.local_addr().to_string();

    // An active session outlives several idle deadlines as long as its
    // gaps stay under the deadline.
    let mut busy = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        std::thread::sleep(std::time::Duration::from_millis(100));
        let reply = busy.call("{\"op\":\"ping\"}").expect("ping");
        assert!(reply.contains("\"pong\":true"), "{reply}");
    }

    // A quiet session is severed by the server within the deadline: the
    // blocked read sees EOF, well before the client's own 30s timeout.
    let started = std::time::Instant::now();
    let reaped = busy.recv().expect("clean close, not an error");
    assert!(reaped.is_none(), "expected EOF, got {reaped:?}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "reap took {:?}",
        started.elapsed()
    );

    // The listener is unaffected: fresh connections keep working.
    let mut fresh = Client::connect(&addr).expect("connect");
    let reply = fresh.call("{\"op\":\"stats\"}").expect("stats");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    net.shutdown();
    server.shutdown();
}

#[test]
fn unix_socket_round_trip_and_cleanup() {
    let dir = std::env::temp_dir().join("trajcl_net_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("serve-{}.sock", std::process::id()));
    let addr = format!("unix:{}", path.display());

    let server = sharded_server(2);
    let net = listen(Arc::clone(&server), &addr, 1).expect("listen");
    assert_eq!(net.local_addr(), addr);

    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .call(&format!(
            "{{\"op\":\"upsert\",\"id\":9,\"traj\":{}}}",
            traj_json(&traj_for(9))
        ))
        .expect("upsert");
    assert!(reply.contains("\"replaced\":false"), "{reply}");
    let reply = client
        .call(&format!(
            "{{\"op\":\"knn\",\"traj\":{},\"k\":1}}",
            traj_json(&traj_for(9))
        ))
        .expect("knn");
    assert!(reply.contains("\"index\":9"), "{reply}");

    net.shutdown();
    server.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}
