//! TCP and unix-socket transport for the serve wire protocol.
//!
//! The transport carries exactly the frames documented in `PROTOCOL.md`
//! (and in the [`proto`](crate::proto) module docs) — promoting the
//! stdin/stdout session to a listener changes *where* bytes come from,
//! never what they mean. Three pieces:
//!
//! * [`pump_frames`] — the transport-agnostic session loop: reads
//!   frames, fans them out to handler threads (so pipelined requests
//!   micro-batch and complete out of order), writes responses as they
//!   finish. The CLI's stdin/stdout mode is this function over standard
//!   streams — the degenerate 1-connection transport.
//! * [`NetServer`] / [`listen`] — a background acceptor over a TCP or
//!   unix-socket address; every connection gets its own [`pump_frames`]
//!   session over the shared [`Server`].
//! * [`Client`] — the matching blocking client: [`Client::call`] for
//!   lock-step request/response, [`Client::send`]/[`Client::recv`] for
//!   pipelining.
//!
//! Addresses are `host:port` for TCP (port 0 picks a free port —
//! [`NetServer::local_addr`] reports the bound one) or `unix:PATH` for a
//! unix socket.
//!
//! A connection dies on its first malformed frame (torn frame, bad
//! header, non-UTF-8 payload): framing errors are not recoverable
//! in-stream, so the socket is closed and the client must reconnect.
//! In-flight requests of a dropped connection still run to completion
//! server-side (their responses go nowhere); acknowledged writes are
//! never undone. Other connections and the listener are unaffected.
//!
//! Every socket carries deadlines: clients dial with [`ClientOptions`]
//! (connect/read/write timeouts, sane defaults), accepted sessions run
//! under [`SessionOptions`] (idle reaping + write deadline). A stalled
//! peer can therefore never wedge a thread forever — it times out, and
//! its session or connection winds down cleanly. [`listen_with`] serves
//! any [`FrameHandler`] (a local [`Server`] or a
//! [`Fleet`](crate::fleet::Fleet) front-end) with explicit deadlines.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{handle, read_frame, write_frame};
use crate::server::Server;

/// Anything that can answer one protocol request payload with one
/// response payload — the seam that lets [`pump_frames`] and
/// [`listen_with`] serve either a local [`Server`] (via
/// [`handle`]) or a fleet front-end
/// ([`crate::fleet::Fleet`]) routing to downstream shard servers.
pub trait FrameHandler: Send + Sync {
    /// Executes one request payload, returning the response payload
    /// (errors are in-band — this never fails at the transport level).
    fn handle_frame(&self, payload: &str) -> String;
}

impl FrameHandler for Server {
    fn handle_frame(&self, payload: &str) -> String {
        handle(self, payload)
    }
}

/// Client-side I/O deadlines for [`Client::connect_with`].
///
/// `None` disables the corresponding deadline (the pre-deadline
/// behaviour: block forever). The defaults are deliberately generous —
/// they exist so a dead peer can never wedge a thread *forever*, not to
/// win failover races; latency-sensitive callers (the fleet router)
/// tighten them to their own budgets.
#[derive(Clone, Copy, Debug)]
pub struct ClientOptions {
    /// TCP connection-establishment deadline (unix sockets connect
    /// locally and ignore it). Default 5 s.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each blocking read ([`Client::recv`] /
    /// [`Client::call`] response waits). Default 30 s.
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write (a peer that stops draining its
    /// socket eventually fills the kernel buffer). Default 30 s.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Server-side per-session deadlines for [`listen`] / [`listen_with`].
///
/// `None` disables the corresponding deadline. Defaults come from
/// [`SessionOptions::default`]; `trajcl serve` surfaces them through
/// `ServeConfig` / `--idle-timeout-ms`.
#[derive(Clone, Copy, Debug)]
pub struct SessionOptions {
    /// A session that has not delivered a complete frame for this long
    /// is reaped: the socket is shut down cleanly and its threads wind
    /// down, so leaked clients don't accumulate session threads. Also
    /// bounds a peer that stalls *mid-frame*. Default 15 min.
    pub idle_timeout: Option<Duration>,
    /// Deadline for each blocking response write (a client that stops
    /// reading eventually fills the kernel buffer; past the deadline its
    /// session is dropped instead of wedging a handler). Default 30 s.
    pub write_timeout: Option<Duration>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            idle_timeout: Some(Duration::from_secs(900)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// True for the error kinds a timed-out socket read/write surfaces
/// (`SO_RCVTIMEO`/`SO_SNDTIMEO` report `WouldBlock` on most unixes,
/// `TimedOut` elsewhere).
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One accepted or dialled connection, TCP or unix (a unified handle so
/// every transport path is written once).
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    // `SO_RCVTIMEO`/`SO_SNDTIMEO` live on the underlying socket, so one
    // call here covers every `try_clone` duplicate of the fd.
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            Stream::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Pumps protocol frames between `input` and `out` until end-of-stream
/// or a framing error: requests are dispatched to `handlers` threads so
/// independent queries micro-batch; responses are written as they finish
/// (out of order — the protocol's `req` echo matches them up, see
/// `PROTOCOL.md`).
///
/// This is the whole per-connection (and stdin/stdout) session loop;
/// both the CLI's `serve` subcommand and [`listen`]'s connection threads
/// run it verbatim. `handler` is the local [`Server`] in shard mode or a
/// [`crate::fleet::Fleet`] front-end in fleet mode.
///
/// When the input stream carries a read deadline (sessions accepted
/// under [`SessionOptions::idle_timeout`]), a timed-out read ends the
/// session cleanly (`Ok`) — that is the idle reaper, not an error.
pub fn pump_frames<H: FrameHandler + ?Sized>(
    handler: &H,
    input: &mut impl BufRead,
    out: &mut (impl Write + Send),
    handlers: usize,
) -> std::io::Result<()> {
    let out = Mutex::new(out);
    let (tx, rx) = std::sync::mpsc::sync_channel::<String>(handlers.max(1) * 2);
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..handlers.max(1) {
            let rx = &rx;
            let out = &out;
            scope.spawn(move || loop {
                let payload = {
                    let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
                    rx.recv()
                };
                let Ok(payload) = payload else { return };
                let response = handler.handle_frame(&payload);
                let mut out = out.lock().unwrap_or_else(|p| p.into_inner());
                // A vanished peer is this connection's problem only; the
                // reader will hit the same condition and wind down.
                let _ = write_frame(&mut **out, &response);
            });
        }
        loop {
            match read_frame(input) {
                Ok(Some(payload)) => {
                    // Handler threads outlive the reader (they only exit
                    // once tx drops below), so a failed send means the
                    // scope is already unwinding — stop reading rather
                    // than panic twice.
                    if tx.send(payload).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                // The session's idle deadline elapsed: reap it cleanly.
                Err(ref e) if is_timeout(e) => break,
                Err(e) => {
                    drop(tx);
                    return Err(e);
                }
            }
        }
        drop(tx);
        Ok(())
    })
}

/// The acceptor's registry of live sessions: each entry keeps a handle
/// on the connection's stream (so shutdown can sever it) and its
/// session thread (so shutdown can join it).
type ConnRegistry = Arc<Mutex<Vec<(Stream, JoinHandle<()>)>>>;

/// A running listener created by [`listen`]: accepts connections in a
/// background thread until [`NetServer::shutdown`].
pub struct NetServer {
    local_addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

/// Serves `server` on `addr` (`host:port`, or `unix:PATH`) in background
/// threads: one acceptor plus, per connection, one [`pump_frames`]
/// session with `handlers` handler threads (1 is right for lock-step
/// clients; pipelining clients gain from more).
///
/// TCP port 0 binds a free port; read it back from
/// [`NetServer::local_addr`]. A pre-existing socket file at a unix PATH
/// is removed first (the standard daemon convention).
///
/// # Errors
/// Address parse and bind failures surface as [`std::io::Error`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
/// use trajcl_engine::Engine;
/// use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
/// use trajcl_serve::net::{listen, Client};
/// use trajcl_serve::{ServeConfig, Server};
/// use trajcl_tensor::{Shape, Tensor};
///
/// // A tiny engine over 4 synthetic trajectories.
/// let mut rng = StdRng::seed_from_u64(0);
/// let cfg = TrajClConfig::test_default();
/// let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
/// let grid = Grid::new(region, 100.0);
/// let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
/// let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
/// let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
/// let db: Vec<Trajectory> = (0..4)
///     .map(|i| (0..5).map(|t| Point::new(t as f64 * 90.0, i as f64 * 150.0)).collect())
///     .collect();
/// let engine = Engine::builder().trajcl(model, feat).database(db).build().unwrap();
/// let server = Arc::new(Server::new(Arc::new(engine), ServeConfig::default()).unwrap());
///
/// // Serve on a free TCP port, dial it, round-trip one stats request.
/// let net = listen(Arc::clone(&server), "127.0.0.1:0", 1).unwrap();
/// let mut client = Client::connect(net.local_addr()).unwrap();
/// let reply = client.call(r#"{"op":"stats"}"#).unwrap();
/// assert!(reply.contains("\"ok\":true") && reply.contains("\"size\":4"));
/// net.shutdown();
/// server.shutdown();
/// ```
pub fn listen(server: Arc<Server>, addr: &str, handlers: usize) -> std::io::Result<NetServer> {
    let opts = server.session_options();
    listen_with(server, addr, handlers, opts)
}

/// [`listen`] over any [`FrameHandler`] with explicit per-session
/// deadlines — the entry point the fleet front-end uses to serve
/// [`crate::fleet::Fleet`] on the wire; [`listen`] is this function
/// specialised to a local [`Server`] and its configured
/// [`SessionOptions`].
///
/// # Errors
/// Address parse and bind failures surface as [`std::io::Error`].
pub fn listen_with<H: FrameHandler + 'static>(
    handler: Arc<H>,
    addr: &str,
    handlers: usize,
    opts: SessionOptions,
) -> std::io::Result<NetServer> {
    let stop = Arc::new(AtomicBool::new(false));
    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
    let (local_addr, accept) = if let Some(path) = addr.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let thread = spawn_acceptor(
            handler,
            Arc::clone(&stop),
            Arc::clone(&conns),
            handlers,
            opts,
            move || listener.accept().map(|(s, _)| Stream::Unix(s)),
        );
        (format!("unix:{path}"), thread)
    } else {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        let thread = spawn_acceptor(
            handler,
            Arc::clone(&stop),
            Arc::clone(&conns),
            handlers,
            opts,
            move || {
                listener.accept().map(|(s, _)| {
                    // Frames are small header+payload write pairs; without
                    // TCP_NODELAY, Nagle + delayed ACK turns every
                    // lock-step round trip into a ~40ms stall.
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                })
            },
        );
        (local, thread)
    };
    Ok(NetServer {
        local_addr,
        stop,
        accept: Some(accept),
        conns,
    })
}

/// The shared accept loop: take connections until the stop flag flips
/// (the shutdown path wakes a blocked `accept` with a throwaway
/// self-connection), spawning one session thread per connection.
fn spawn_acceptor<H: FrameHandler + 'static>(
    handler: Arc<H>,
    stop: Arc<AtomicBool>,
    conns: ConnRegistry,
    handlers: usize,
    opts: SessionOptions,
    accept: impl FnMut() -> std::io::Result<Stream> + Send + 'static,
) -> JoinHandle<()> {
    let mut accept = accept;
    std::thread::spawn(move || loop {
        let stream = match accept() {
            Ok(s) => s,
            Err(_) if stop.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // The deadlines live on the socket itself, so they cover the
        // session's reader and writer clones alike. A session whose
        // reads go quiet past the idle deadline winds down cleanly in
        // `pump_frames`; a peer that stops draining responses trips the
        // write deadline and is dropped.
        let _ = stream.set_read_timeout(opts.idle_timeout);
        let _ = stream.set_write_timeout(opts.write_timeout);
        let Ok(reader_half) = stream.try_clone() else {
            continue;
        };
        let handler = Arc::clone(&handler);
        let session = std::thread::spawn(move || {
            let mut input = BufReader::new(reader_half);
            let Ok(mut output) = input.get_ref().try_clone() else {
                return;
            };
            // Framing errors and disconnects end this session only.
            let _ = pump_frames(&*handler, &mut input, &mut output, handlers);
            // Sever the socket now: the acceptor keeps its own duplicate
            // of the fd until shutdown, so without this the peer of a
            // dead session would never see EOF.
            input.get_ref().shutdown();
        });
        conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((stream, session));
    })
}

impl NetServer {
    /// The bound address, in the same syntax [`listen`] accepts — for
    /// TCP with port 0 this is where the actual port shows up.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Stops accepting, severs every open connection, and joins all
    /// transport threads. The [`Server`] itself keeps running (shut it
    /// down separately — it may be shared with other listeners).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // A blocked accept() only wakes on a connection: dial ourselves.
        if let Some(path) = self.local_addr.strip_prefix("unix:") {
            let _ = UnixStream::connect(path);
        } else {
            let _ = TcpStream::connect(&self.local_addr);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for (stream, session) in conns {
            stream.shutdown();
            let _ = session.join();
        }
        if let Some(path) = self.local_addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A blocking protocol client over TCP or a unix socket (same address
/// syntax as [`listen`]).
///
/// One request in flight: [`Client::call`]. Pipelining: issue several
/// [`Client::send`]s tagged with distinct `"req"` values, then drain
/// [`Client::recv`] and match responses by their echoed `req`
/// (responses may arrive in any order — `PROTOCOL.md` has the rules).
pub struct Client {
    input: BufReader<Stream>,
    output: Stream,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:PATH`) with the default
    /// [`ClientOptions`] deadlines.
    ///
    /// # Errors
    /// Connection failures (including a blown connect deadline) surface
    /// as [`std::io::Error`].
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_with(addr, &ClientOptions::default())
    }

    /// Dials `addr` with explicit connect/read/write deadlines.
    ///
    /// # Errors
    /// Connection failures surface as [`std::io::Error`]; a blown
    /// connect deadline reads as [`std::io::ErrorKind::TimedOut`].
    pub fn connect_with(addr: &str, opts: &ClientOptions) -> std::io::Result<Client> {
        let stream = if let Some(path) = addr.strip_prefix("unix:") {
            // Local connects complete (or fail) immediately; the connect
            // deadline only matters for TCP.
            Stream::Unix(UnixStream::connect(path)?)
        } else {
            let s = match opts.connect_timeout {
                Some(deadline) => {
                    // `connect_timeout` wants a resolved SocketAddr; try
                    // each resolution until one answers.
                    let mut last_err = None;
                    let mut connected = None;
                    for sock_addr in addr.to_socket_addrs()? {
                        match TcpStream::connect_timeout(&sock_addr, deadline) {
                            Ok(s) => {
                                connected = Some(s);
                                break;
                            }
                            Err(e) => last_err = Some(e),
                        }
                    }
                    connected.ok_or_else(|| {
                        last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no endpoints",
                            )
                        })
                    })?
                }
                None => TcpStream::connect(addr)?,
            };
            // See `listen`: lock-step framing needs TCP_NODELAY.
            let _ = s.set_nodelay(true);
            Stream::Tcp(s)
        };
        stream.set_read_timeout(opts.read_timeout)?;
        stream.set_write_timeout(opts.write_timeout)?;
        let output = stream.try_clone()?;
        Ok(Client {
            input: BufReader::new(stream),
            output,
        })
    }

    /// Re-arms the read deadline on the live connection (the fleet
    /// router tightens it per call to fit its remaining deadline
    /// budget). `None` disables it.
    ///
    /// # Errors
    /// Socket option failures surface as [`std::io::Error`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.input.get_ref().set_read_timeout(dur)
    }

    /// Sends one request frame without waiting for the response.
    ///
    /// # Errors
    /// Transport failures surface as [`std::io::Error`].
    pub fn send(&mut self, payload: &str) -> std::io::Result<()> {
        write_frame(&mut self.output, payload)
    }

    /// Receives the next response frame; `Ok(None)` when the server
    /// closed the connection.
    ///
    /// # Errors
    /// Transport and framing failures surface as [`std::io::Error`].
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        read_frame(&mut self.input)
    }

    /// One lock-step request/response round trip.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection instead of answering; transport failures pass through.
    pub fn call(&mut self, payload: &str) -> std::io::Result<String> {
        self.send(payload)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })
    }
}
