//! An LRU cache from trajectory content hashes to embeddings.
//!
//! Consulted *before* the micro-batcher: a hot query (same geometry, any
//! caller) costs one hash + one map lookup instead of a model forward.
//! The map is a classic O(1) LRU — a `HashMap` into a slab of
//! doubly-linked nodes — so steady-state hits do no allocation.

use std::collections::HashMap;

use trajcl_geo::Trajectory;

/// Sentinel for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

/// FNV-1a over the trajectory's point coordinates (bit-exact: two
/// trajectories hash equal iff their point sequences are identical floats).
pub fn content_hash(traj: &Trajectory) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in traj.points() {
        eat(p.x.to_bits());
        eat(p.y.to_bits());
    }
    h
}

struct Node {
    key: u64,
    /// The exact trajectory this entry was computed from: verified on
    /// every hit, so a 64-bit hash collision degrades to a miss instead
    /// of silently serving another trajectory's embedding.
    traj: Trajectory,
    emb: Vec<f32>,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map from trajectory content hashes to embeddings,
/// with the full trajectory stored per entry for collision-proof hits.
pub struct LruCache {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl LruCache {
    /// A cache holding at most `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> LruCache {
        assert!(cap >= 1, "LruCache capacity must be at least 1");
        LruCache {
            map: HashMap::with_capacity(cap),
            nodes: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// The embedding cached for `traj` under `key`, marking the entry
    /// most recently used. A key whose stored trajectory differs (hash
    /// collision) is a miss.
    pub fn get(&mut self, key: u64, traj: &Trajectory) -> Option<&[f32]> {
        let i = *self.map.get(&key)?;
        if self.nodes[i].traj != *traj {
            return None;
        }
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.nodes[i].emb)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when the cache is full. A colliding key's previous entry is
    /// replaced.
    pub fn put(&mut self, key: u64, traj: Trajectory, emb: Vec<f32>) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].traj = traj;
            self.nodes[i].emb = emb;
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        // Entries only leave by eviction (which reuses the slot in
        // place), so the slab never has holes: either evict or append.
        let i = if self.map.len() >= self.cap {
            // Evict the tail and reuse its slot.
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.nodes[lru].key = key;
            self.nodes[lru].traj = traj;
            self.nodes[lru].emb = emb;
            lru
        } else {
            self.nodes.push(Node {
                key,
                traj,
                emb,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_geo::Point;

    fn traj(pts: &[(f64, f64)]) -> Trajectory {
        pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn content_hash_is_bit_exact() {
        let a = traj(&[(1.0, 2.0), (3.0, 4.0)]);
        let b = traj(&[(1.0, 2.0), (3.0, 4.0)]);
        let c = traj(&[(1.0, 2.0), (3.0, 4.0 + 1e-12)]);
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&a), content_hash(&c));
        assert_ne!(content_hash(&a), content_hash(&traj(&[(1.0, 2.0)])));
    }

    /// A distinct marker trajectory per key (for exercising the map).
    fn t(k: u64) -> Trajectory {
        traj(&[(k as f64, 0.0)])
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put(1, t(1), vec![1.0]);
        cache.put(2, t(2), vec![2.0]);
        assert_eq!(cache.get(1, &t(1)), Some(&[1.0f32][..])); // 2 is now LRU
        cache.put(3, t(3), vec![3.0]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2, &t(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(1, &t(1)).is_some());
        assert!(cache.get(3, &t(3)).is_some());
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut cache = LruCache::new(2);
        cache.put(1, t(1), vec![1.0]);
        cache.put(2, t(2), vec![2.0]);
        cache.put(1, t(1), vec![10.0]); // refresh: 2 becomes LRU
        cache.put(3, t(3), vec![3.0]);
        assert_eq!(cache.get(1, &t(1)), Some(&[10.0f32][..]));
        assert!(cache.get(2, &t(2)).is_none());
    }

    #[test]
    fn colliding_key_is_a_miss_not_a_wrong_hit() {
        let mut cache = LruCache::new(4);
        // Same key, different geometry: simulates a 64-bit hash collision.
        cache.put(7, t(1), vec![1.0]);
        assert!(cache.get(7, &t(2)).is_none(), "collision must miss");
        assert_eq!(cache.get(7, &t(1)), Some(&[1.0f32][..]));
        // The colliding trajectory replaces the entry on put.
        cache.put(7, t(2), vec![2.0]);
        assert!(cache.get(7, &t(1)).is_none());
        assert_eq!(cache.get(7, &t(2)), Some(&[2.0f32][..]));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut cache = LruCache::new(8);
        for k in 0..1000u64 {
            cache.put(k, t(k), vec![k as f32]);
            assert!(cache.len() <= 8);
        }
        for k in 992..1000u64 {
            assert_eq!(cache.get(k, &t(k)), Some(&[k as f32][..]));
        }
    }
}
