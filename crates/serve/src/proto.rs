//! The wire protocol of `trajcl serve`: length-prefixed JSON frames over
//! any byte stream — a TCP or unix socket via [`net`](crate::net), or
//! stdin/stdout in the CLI's degenerate single-connection mode.
//!
//! The normative wire-format specification lives in `PROTOCOL.md` at the
//! repository root (exact frame bytes, per-op request/response schemas,
//! error frames, pipelining and shard-routing rules); this module is the
//! reference implementation and the table below is a summary.
//!
//! A frame is the payload's byte length in ASCII decimal, a newline, the
//! JSON payload, and a closing newline:
//!
//! ```text
//! 43
//! {"op":"knn","traj":[[0,0],[100,50]],"k":3}
//! ```
//!
//! Requests are flat JSON objects with an `"op"` discriminator; responses
//! are flat objects with `"ok"` plus op-specific fields, `distance` keys
//! matching the CLI's existing `--json` output. An optional numeric
//! `"req"` field is echoed back verbatim so pipelined callers can match
//! responses to requests regardless of completion order. Errors are
//! in-band: `{"ok":false,"error":"..."}` with the request's echo.
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `ping`     | —                 | `pong` (always `true`) |
//! | `embed`    | `traj`            | `embedding` (f32 array) |
//! | `knn`      | `traj`, `k`       | `hits`: `[{rank,index,distance}]` |
//! | `distance` | `a`, `b`          | `distance` |
//! | `upsert`   | `id`, `traj`      | `replaced` (bool) |
//! | `remove`   | `id`              | `removed` (bool) |
//! | `compact`  | —                 | `sealed` (live vectors re-sealed) |
//! | `stats`    | —                 | `size`, `buffer`, `generation`, `memory_bytes`, `shards`, `requests`, `batches`, `batched_jobs`, `cache_hits`, `cache_misses` |
//!
//! `ping` is the health probe: constant cost, answered without touching
//! the engine, the index, or any lock — a wedged compaction or a full
//! batcher queue cannot delay it. Fleet front-ends probe downstream
//! shard health with it (DESIGN.md §14); load balancers can too.
//!
//! `knn` distances are exact f32 L1 for unquantized indexes and for
//! quantized hits the server can rescore against the engine's cached
//! table; ids upserted over the wire keep asymmetric (error-bounded)
//! distances — see `ServeConfig::rescore_sealed`.

use std::io::{BufRead, Write};

use trajcl_geo::{Point, Trajectory};

use crate::json::{escape, parse, Json};
use crate::server::Server;

/// Largest accepted frame payload (a ~100k-point trajectory is ~2 MB of
/// JSON); bigger headers are rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Largest accepted header line. A valid header is the ASCII decimal of a
/// length `<= MAX_FRAME_LEN` (8 digits) plus a newline; reading the line
/// through a [`std::io::Read::take`] of this size keeps a hostile
/// newline-less stream from growing the header string without bound.
const MAX_HEADER_LEN: usize = 64;

/// Largest accepted `k` for a `knn` request: bounds the per-request
/// result-heap allocation no matter what the wire claims.
pub const MAX_K: usize = 16 * 1024;

/// Reads one frame's payload; `Ok(None)` on clean end-of-stream.
///
/// # Examples
///
/// ```
/// use std::io::Cursor;
/// use trajcl_serve::proto::read_frame;
///
/// // `LEN\n{json}\n` — exactly what `write_frame` produces.
/// let mut stream = Cursor::new(b"14\n{\"op\":\"stats\"}\n".to_vec());
/// assert_eq!(read_frame(&mut stream).unwrap().unwrap(), "{\"op\":\"stats\"}");
/// assert!(read_frame(&mut stream).unwrap().is_none()); // end-of-stream
///
/// // A non-numeric header is an error, not a hang.
/// let mut bad = Cursor::new(b"banana\n{}\n".to_vec());
/// assert!(read_frame(&mut bad).is_err());
/// ```
pub fn read_frame(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut header = String::new();
    loop {
        header.clear();
        // The limit applies per header line; `Take` over `&mut *reader`
        // still drains the underlying stream position.
        let mut limited = std::io::Read::take(&mut *reader, MAX_HEADER_LEN as u64);
        if limited.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        if header.len() >= MAX_HEADER_LEN && !header.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame header longer than {MAX_HEADER_LEN} bytes"),
            ));
        }
        if !header.trim().is_empty() {
            break;
        }
        // Blank lines between frames are tolerated.
    }
    let len: usize = header
        .trim()
        .parse()
        .ok()
        .filter(|&n| n <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad frame header {:?} (max {MAX_FRAME_LEN})", header.trim()),
            )
        })?;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let payload = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame"))?;
    // Consume the trailing newline when present (ragged last frame is ok).
    let mut nl = [0u8; 1];
    match reader.read_exact(&mut nl) {
        Ok(()) if nl[0] != b'\n' => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame payload not followed by newline",
            ))
        }
        _ => {}
    }
    Ok(Some(payload))
}

/// Writes one frame.
///
/// # Examples
///
/// ```
/// use trajcl_serve::proto::{read_frame, write_frame};
///
/// let mut buf = Vec::new();
/// write_frame(&mut buf, r#"{"req":1,"op":"compact"}"#).unwrap();
/// assert!(buf.starts_with(b"24\n")); // byte length, newline, payload
///
/// let mut reader = &buf[..];
/// assert_eq!(
///     read_frame(&mut reader).unwrap().unwrap(),
///     r#"{"req":1,"op":"compact"}"#
/// );
/// ```
pub fn write_frame(writer: &mut impl Write, payload: &str) -> std::io::Result<()> {
    writeln!(writer, "{}", payload.len())?;
    writer.write_all(payload.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Decodes `[[x,y],...]` into a trajectory.
fn parse_traj(value: &Json) -> Result<Trajectory, String> {
    let pts = value
        .as_arr()
        .ok_or("\"traj\" must be an array of [x,y] pairs")?;
    let mut out = Vec::with_capacity(pts.len());
    for (i, p) in pts.iter().enumerate() {
        let pair = p
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| format!("point {i} must be a two-element [x,y] array"))?;
        let x = pair[0]
            .as_f64()
            .ok_or_else(|| format!("point {i}: x is not a number"))?;
        let y = pair[1]
            .as_f64()
            .ok_or_else(|| format!("point {i}: y is not a number"))?;
        out.push(Point::new(x, y));
    }
    Ok(Trajectory::new(out))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field \"{key}\""))
}

/// The `"req":N,` echo prefix (empty when the request carried no `req`).
pub(crate) fn req_echo(obj: &Json) -> String {
    match obj.get("req").and_then(Json::as_u64) {
        Some(n) => format!("\"req\":{n},"),
        None => String::new(),
    }
}

pub(crate) fn err_response(echo: &str, msg: &str) -> String {
    format!("{{{echo}\"ok\":false,\"error\":\"{}\"}}", escape(msg))
}

/// Executes one request payload against `server`, returning the response
/// payload (errors are in-band: `{"ok":false,"error":...}`).
pub fn handle(server: &Server, payload: &str) -> String {
    let obj = match parse(payload) {
        Ok(v) => v,
        Err(e) => return err_response("", &format!("malformed JSON: {e}")),
    };
    let echo = req_echo(&obj);
    match dispatch(server, &obj) {
        Ok(body) => format!("{{{echo}\"ok\":true,{body}}}"),
        Err(msg) => err_response(&echo, &msg),
    }
}

fn dispatch(server: &Server, obj: &Json) -> Result<String, String> {
    let op = field(obj, "op")?
        .as_str()
        .ok_or("\"op\" must be a string")?;
    match op {
        // The health probe: answered from this match arm alone — no
        // engine call, no index snapshot, no lock, no counters — so it
        // stays honest about liveness even when the data path is wedged.
        "ping" => Ok("\"pong\":true".to_string()),
        "embed" => {
            let traj = parse_traj(field(obj, "traj")?)?;
            let e = server.embed(&traj).map_err(|e| e.to_string())?;
            let vals: Vec<String> = e.iter().map(|v| format!("{v:.6}")).collect();
            Ok(format!("\"embedding\":[{}]", vals.join(",")))
        }
        "knn" => {
            let traj = parse_traj(field(obj, "traj")?)?;
            let k = field(obj, "k")?
                .as_u64()
                .filter(|&k| k <= MAX_K as u64)
                .ok_or_else(|| format!("\"k\" must be an integer in 0..={MAX_K}"))?;
            let hits = server.knn(&traj, k as usize).map_err(|e| e.to_string())?;
            let rows: Vec<String> = hits
                .iter()
                .enumerate()
                .map(|(rank, (id, dist))| {
                    format!(
                        "{{\"rank\":{},\"index\":{id},\"distance\":{dist:.6}}}",
                        rank + 1
                    )
                })
                .collect();
            Ok(format!("\"hits\":[{}]", rows.join(",")))
        }
        "distance" => {
            let a = parse_traj(field(obj, "a")?)?;
            let b = parse_traj(field(obj, "b")?)?;
            let d = server.distance(&a, &b).map_err(|e| e.to_string())?;
            Ok(format!("\"distance\":{d:.6}"))
        }
        "upsert" => {
            let id = field(obj, "id")?
                .as_u64()
                .ok_or("\"id\" must be a non-negative integer")?;
            let traj = parse_traj(field(obj, "traj")?)?;
            let replaced = server.upsert(id, &traj).map_err(|e| e.to_string())?;
            Ok(format!("\"replaced\":{replaced}"))
        }
        "remove" => {
            let id = field(obj, "id")?
                .as_u64()
                .ok_or("\"id\" must be a non-negative integer")?;
            let removed = server.remove(id).map_err(|e| e.to_string())?;
            Ok(format!("\"removed\":{removed}"))
        }
        "compact" => {
            let sealed = server.compact().map_err(|e| e.to_string())?;
            Ok(format!("\"sealed\":{sealed}"))
        }
        "stats" => {
            let s = server.stats();
            Ok(format!(
                "\"size\":{},\"buffer\":{},\"generation\":{},\"memory_bytes\":{},\"shards\":{},\"requests\":{},\"batches\":{},\"batched_jobs\":{},\"cache_hits\":{},\"cache_misses\":{},\"wal_log_bytes\":{}",
                s.index_len,
                s.buffer_len,
                s.generation,
                s.index_memory_bytes,
                s.shards,
                s.requests,
                s.batches,
                s.batched_jobs,
                s.cache_hits,
                s.cache_misses,
                s.wal_log_bytes,
            ))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        write_frame(&mut buf, r#"{"op":"compact"}"#).unwrap();
        let mut reader = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            r#"{"op":"stats"}"#
        );
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            r#"{"op":"compact"}"#
        );
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn frame_reader_rejects_garbage_headers() {
        let mut reader = Cursor::new(b"banana\n{}\n".to_vec());
        assert!(read_frame(&mut reader).is_err());
        // An absurd length must be rejected BEFORE any allocation.
        let mut reader = Cursor::new(b"9999999999999\n{}\n".to_vec());
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn frame_reader_bounds_the_header_line() {
        // Fuzz regression: a newline-less stream used to accumulate into
        // the header string without bound; now it fails at MAX_HEADER_LEN.
        let mut reader = Cursor::new(vec![b'1'; 4096]);
        assert!(read_frame(&mut reader).is_err());
        // A maximum-length legitimate header still works.
        let payload = "x".repeat(9);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut reader = Cursor::new(buf);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), payload);
    }

    #[test]
    fn frame_reader_tolerates_blank_lines() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"\n\n");
        write_frame(&mut buf, "{}").unwrap();
        let mut reader = Cursor::new(buf);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "{}");
    }

    #[test]
    fn parse_traj_validates_shape() {
        assert!(parse_traj(&parse("[[1,2],[3,4]]").unwrap()).is_ok());
        assert!(parse_traj(&parse("[[1,2],[3]]").unwrap()).is_err());
        assert!(parse_traj(&parse("[1,2]").unwrap()).is_err());
        assert!(parse_traj(&parse("\"x\"").unwrap()).is_err());
    }
}
