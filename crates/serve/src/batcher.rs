//! The dynamic micro-batcher: a bounded MPSC queue of embed requests
//! drained by worker threads into fused forward passes.
//!
//! Callers submit small embed jobs (one or two trajectories each) and
//! block on a per-job response channel. A worker dequeues the first
//! pending job, then keeps harvesting — instantly while the queue is
//! non-empty, and for at most `max_wait` while it is — until the fused
//! batch reaches `max_batch` trajectories. The whole batch runs as ONE
//! tape-free forward through the worker's own
//! [`InferCtx`](trajcl_tensor::InferCtx) (checked out of a shared
//! [`CtxPool`]), so concurrent callers share a forward instead of
//! serialising on the backend's internal mutex.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trajcl_engine::{Engine, EngineError};
use trajcl_geo::Trajectory;
use trajcl_tensor::CtxPool;

/// One embed request: a few trajectories plus the channel carrying their
/// embedding rows back to the blocked caller.
pub(crate) struct EmbedJob {
    pub trajs: Vec<Trajectory>,
    pub resp: SyncSender<Result<Vec<Vec<f32>>, EngineError>>,
}

/// Batching knobs (see [`crate::ServeConfig`] for the user-facing copy).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: Duration,
}

/// Shared batching counters (exported through `Server::stats`).
#[derive(Default)]
pub(crate) struct BatchStats {
    /// Fused forward passes run.
    pub batches: AtomicU64,
    /// Jobs served across all batches.
    pub jobs: AtomicU64,
    /// Trajectories embedded across all batches.
    pub trajs: AtomicU64,
    /// Jobs submitted but not yet claimed by a worker's batch. When this
    /// hits zero mid-collection there is no straggler to wait for — every
    /// client is blocked on a response — so the worker dispatches
    /// immediately instead of idling out `max_wait` (which would stall
    /// closed-loop callers for nothing).
    pub pending: AtomicUsize,
}

/// Worker threads draining a shared receiver into fused forwards.
pub(crate) struct Batcher {
    tx: SyncSender<EmbedJob>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns `workers` threads over a bounded queue of `queue_cap` jobs.
    ///
    /// # Errors
    /// Propagates the OS error when a worker thread cannot be spawned
    /// (resource exhaustion); threads spawned before the failure are
    /// joined through the dropped sender before the error returns.
    pub fn spawn(
        engine: Arc<Engine>,
        workers: usize,
        queue_cap: usize,
        policy: BatchPolicy,
        stats: Arc<BatchStats>,
    ) -> std::io::Result<Batcher> {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<EmbedJob>(queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let ctx_pool = Arc::new(CtxPool::with_contexts(workers));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let ctx_pool = Arc::clone(&ctx_pool);
            let stats = Arc::clone(&stats);
            let spawned = std::thread::Builder::new()
                .name(format!("trajcl-serve-{i}"))
                .spawn(move || worker_loop(&engine, &rx, &ctx_pool, policy, &stats));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Closing the queue lets the already-running workers
                    // drain and exit before the constructor fails.
                    drop(tx);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Batcher {
            tx,
            workers: handles,
        })
    }

    /// A submission handle (cloned per caller; all clones feed one queue).
    pub fn sender(&self) -> SyncSender<EmbedJob> {
        self.tx.clone()
    }

    /// Closes the queue and joins every worker. Jobs already queued are
    /// still served before the workers exit.
    pub fn shutdown(self) {
        drop(self.tx);
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// Collects one batch from the queue: the first job blocks indefinitely,
/// companions are harvested until `max_batch` trajectories or the
/// `max_wait` deadline — but the timed wait is skipped whenever no
/// submission is in flight (see [`BatchStats::pending`]). Returns `None`
/// when the queue closed with nothing pending.
fn collect_batch(
    rx: &Receiver<EmbedJob>,
    policy: BatchPolicy,
    stats: &BatchStats,
) -> Option<Vec<EmbedJob>> {
    let first = rx.recv().ok()?;
    stats.pending.fetch_sub(1, Ordering::AcqRel);
    let mut total = first.trajs.len();
    let mut jobs = vec![first];
    let deadline = Instant::now() + policy.max_wait;
    while total < policy.max_batch {
        match rx.try_recv() {
            Ok(job) => {
                stats.pending.fetch_sub(1, Ordering::AcqRel);
                total += job.trajs.len();
                jobs.push(job);
            }
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => {
                if stats.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => {
                        stats.pending.fetch_sub(1, Ordering::AcqRel);
                        total += job.trajs.len();
                        jobs.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }
    Some(jobs)
}

fn worker_loop(
    engine: &Engine,
    rx: &Mutex<Receiver<EmbedJob>>,
    ctx_pool: &CtxPool,
    policy: BatchPolicy,
    stats: &BatchStats,
) {
    let mut ctx = ctx_pool.checkout();
    loop {
        // Hold the receiver lock across the whole collection window: a
        // second idle worker grabbing stragglers would only shrink the
        // fused batch (busy workers are already off running forwards).
        let jobs = {
            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
            collect_batch(&rx, policy, stats)
        };
        let Some(jobs) = jobs else { return };
        let all: Vec<Trajectory> = jobs.iter().flat_map(|j| j.trajs.iter().cloned()).collect();
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.jobs.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        stats.trajs.fetch_add(all.len() as u64, Ordering::Relaxed);
        match engine.embed_all_with(&mut ctx, &all) {
            Ok(emb) => {
                let d = emb.shape().last();
                let mut row = 0usize;
                for job in jobs {
                    let rows: Vec<Vec<f32>> = (0..job.trajs.len())
                        .map(|i| emb.data()[(row + i) * d..(row + i + 1) * d].to_vec())
                        .collect();
                    row += job.trajs.len();
                    let _ = job.resp.send(Ok(rows));
                }
            }
            Err(e) => {
                // Jobs are validated at submission, so a batch failure is
                // systemic; every waiter learns the same cause.
                let msg = format!("batched embed failed: {e}");
                for job in jobs {
                    let _ = job.resp.send(Err(EngineError::InvalidInput(msg.clone())));
                }
            }
        }
    }
}
