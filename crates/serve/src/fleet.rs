//! The fleet front-end: a router process that scatters the serve
//! protocol across N independent downstream shard servers.
//!
//! [`Fleet`] owns one [`Client`] connection per downstream shard
//! (`trajcl serve --listen` processes) and implements
//! [`FrameHandler`], so [`crate::net::listen_with`] serves it on the
//! wire exactly like a local [`crate::Server`] — clients speak the same
//! PROTOCOL.md frames to a front-end and cannot tell (except for the
//! extra degradation fields) that the data lives in other processes.
//!
//! Placement and merging reuse the in-process sharding machinery
//! verbatim: `upsert`/`remove` route by
//! [`trajcl_index::shard_for`]`(id, n)` — the same splitmix64 hash the
//! in-process [`trajcl_index::ShardedIndex`] uses — and `knn` forwards
//! the query to every shard and merges the per-shard top-k lists
//! through [`trajcl_index::merge_partials`], the exact fused-top-k
//! path. Because shards hold disjoint id sets and each returns its
//! local top-k, the merged answer is bit-identical to an unsharded
//! server over the same data (DESIGN.md §13.3; §14 for the fleet).
//!
//! Robustness is the point (DESIGN.md §14):
//!
//! * every downstream call carries connect/read/write deadlines and a
//!   total per-op budget ([`FleetConfig::op_deadline`]) — no code path
//!   blocks unboundedly on a dead shard;
//! * failures retry with exponential backoff and deterministic seeded
//!   jitter, within the op budget;
//! * each shard runs a health state machine — [`ShardHealth::Up`] →
//!   [`ShardHealth::Degraded`] → [`ShardHealth::Down`] on consecutive
//!   failures, with a background `ping` prober re-admitting recovered
//!   shards through a half-open circuit-breaker step;
//! * when shards are unreachable, reads degrade instead of failing:
//!   responses carry `"partial":true` with `shards_ok`/`shards_total`
//!   (or error in-band under [`FleetConfig::fail_closed`]); writes to a
//!   down shard error in-band immediately — never hang.
//!
//! **Shard recovery is the shard's own job.** A downstream started with
//! `trajcl serve --wal DIR` recovers its partition from its write-ahead
//! log (last checkpoint + log tail, DESIGN.md §15) before it answers
//! the prober's first `ping`; once the health machine re-admits it, the
//! fleet is serving the full id space again with every acknowledged
//! write intact — no operator replay of the lost partition. The
//! `shard_restart_with_wal_recovers_acked_writes` chaos test drives
//! exactly this path (SIGKILL mid-pipeline, restart, bit-exact
//! verification).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trajcl_index::{merge_partials, shard_for};

use crate::json::{parse, Json};
use crate::net::{Client, ClientOptions, FrameHandler};
use crate::proto::{err_response, req_echo, MAX_K};

/// Tuning knobs for [`Fleet::connect`].
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Socket deadlines for downstream connections (dial, per-read,
    /// per-write). The per-call read deadline is additionally tightened
    /// to the remaining [`FleetConfig::op_deadline`] budget.
    pub client: ClientOptions,
    /// Total wall-clock budget for one downstream call including
    /// reconnects, retries and backoff sleeps. This is the fleet's
    /// answer-by deadline: a scattered read completes (possibly
    /// partial) within roughly this budget regardless of shard state.
    pub op_deadline: Duration,
    /// Extra attempts after the first failed one.
    pub retries: u32,
    /// First retry's backoff sleep (doubles per attempt).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failures that take a shard [`ShardHealth::Down`]
    /// (fewer leave it [`ShardHealth::Degraded`]).
    pub down_after: u32,
    /// Cadence of the background health prober (fresh connection +
    /// `ping` against every non-[`ShardHealth::Up`] shard).
    pub probe_interval: Duration,
    /// `true` errors degraded reads in-band instead of answering
    /// `"partial":true` (fail-closed; the default is fail-open).
    pub fail_closed: bool,
    /// Seed of the deterministic backoff-jitter stream (splitmix64 over
    /// a counter — two fleets with the same seed and call order sleep
    /// identically, which the chaos suite relies on).
    pub jitter_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            client: ClientOptions {
                connect_timeout: Some(Duration::from_secs(2)),
                read_timeout: Some(Duration::from_secs(10)),
                write_timeout: Some(Duration::from_secs(10)),
            },
            op_deadline: Duration::from_secs(10),
            retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(1),
            down_after: 3,
            probe_interval: Duration::from_millis(500),
            fail_closed: false,
            jitter_seed: 0x5EED_F1EE7,
        }
    }
}

/// A shard's position in the health state machine (DESIGN.md §14.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Up,
    /// Recent failures (or a half-open probation after recovering from
    /// [`ShardHealth::Down`]): still receives traffic, one step from
    /// the breaker tripping.
    Degraded,
    /// Breaker open: skipped by reads, writes error in-band, only the
    /// background prober talks to it.
    Down,
}

impl ShardHealth {
    /// The lowercase wire name (`"up"` / `"degraded"` / `"down"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Down => "down",
        }
    }
}

/// Mutable health-machine state, one per shard.
struct HealthState {
    health: ShardHealth,
    consecutive_fails: u32,
}

/// One downstream shard: its address, the (lock-step) live connection,
/// and its health state.
struct Shard {
    addr: String,
    /// The persistent connection, dialled lazily and dropped on any
    /// transport error (a failed call may leave the stream mid-frame;
    /// resynchronisation is reconnection). Held across a full
    /// request/response round trip, so calls to ONE shard serialise —
    /// scatter parallelism is across shards, not within one.
    conn: Mutex<Option<Client>>,
    state: Mutex<HealthState>,
}

impl Shard {
    fn health(&self) -> ShardHealth {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).health
    }

    /// A live call or probe succeeded: Degraded/Up → Up; Down → the
    /// half-open probation step (Degraded with one strike left, so a
    /// single failure re-trips the breaker instead of re-earning the
    /// full failure budget).
    fn record_success(&self, down_after: u32) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match s.health {
            ShardHealth::Down => {
                s.health = ShardHealth::Degraded;
                s.consecutive_fails = down_after.saturating_sub(1);
            }
            _ => {
                s.health = ShardHealth::Up;
                s.consecutive_fails = 0;
            }
        }
    }

    fn record_failure(&self, down_after: u32) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.consecutive_fails = s.consecutive_fails.saturating_add(1);
        s.health = if s.consecutive_fails >= down_after {
            ShardHealth::Down
        } else {
            ShardHealth::Degraded
        };
    }
}

/// The splitmix64 mixer (same constants as the placement hash) — drives
/// the deterministic backoff-jitter stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fleet front-end router (module docs have the architecture).
///
/// Construct with [`Fleet::connect`], serve with
/// [`crate::net::listen_with`] (it implements [`FrameHandler`]), stop
/// with [`Fleet::shutdown`].
pub struct Fleet {
    shards: Vec<Arc<Shard>>,
    cfg: FleetConfig,
    stop: Arc<AtomicBool>,
    prober: Mutex<Option<JoinHandle<()>>>,
    /// Counter behind the jitter stream and single-shard round-robin.
    ticket: AtomicU64,
}

impl Fleet {
    /// Dials the downstream shards and starts the background health
    /// prober. Unreachable shards start [`ShardHealth::Down`] (the
    /// prober re-admits them when they appear); the call only fails if
    /// `addrs` is empty or EVERY shard is unreachable — a fleet with no
    /// healthy downstream cannot answer anything.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::InvalidInput`] for an empty address list;
    /// the last dial error when no shard is reachable.
    pub fn connect(addrs: &[String], cfg: FleetConfig) -> std::io::Result<Fleet> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "fleet needs at least one shard address",
            ));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        let mut reachable = 0usize;
        let mut last_err = None;
        for addr in addrs {
            let shard = Arc::new(Shard {
                addr: addr.clone(),
                conn: Mutex::new(None),
                state: Mutex::new(HealthState {
                    health: ShardHealth::Up,
                    consecutive_fails: 0,
                }),
            });
            // One eager probe so startup state is honest: operators see
            // dead addresses immediately instead of on first traffic.
            match probe_once(&shard.addr, &cfg.client) {
                Ok(()) => reachable += 1,
                Err(e) => {
                    let mut s = shard.state.lock().unwrap_or_else(|p| p.into_inner());
                    s.health = ShardHealth::Down;
                    s.consecutive_fails = cfg.down_after;
                    last_err = Some(e);
                }
            }
            shards.push(shard);
        }
        if reachable == 0 {
            return Err(last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotConnected, "no shard reachable")
            }));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let prober = spawn_prober(shards.clone(), cfg, Arc::clone(&stop));
        Ok(Fleet {
            shards,
            cfg,
            stop,
            prober: Mutex::new(Some(prober)),
            ticket: AtomicU64::new(0),
        })
    }

    /// Downstream shard count (`shards_total` on the wire).
    pub fn shards_total(&self) -> usize {
        self.shards.len()
    }

    /// Current health of every shard, in address order.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards.iter().map(|s| s.health()).collect()
    }

    /// Stops the prober and drops every downstream connection. Called
    /// by `Drop`; explicit for tests and the CLI's clean-exit path.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let prober = self.prober.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(prober) = prober {
            let _ = prober.join();
        }
        for shard in &self.shards {
            shard.conn.lock().unwrap_or_else(|p| p.into_inner()).take();
        }
    }

    /// The next value of the deterministic jitter/round-robin stream,
    /// in `[0, 1)`.
    fn jitter(&self) -> f64 {
        let n = self.ticket.fetch_add(1, Ordering::Relaxed);
        (splitmix64(self.cfg.jitter_seed ^ n) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One downstream call with the full robustness envelope: per-op
    /// deadline, bounded retries, backoff+jitter, health recording.
    /// Transport errors surface as `Err`; in-band downstream errors are
    /// `Ok` (the shard is healthy — the request was bad).
    fn call_shard(&self, shard: &Shard, payload: &str) -> std::io::Result<String> {
        let deadline = Instant::now() + self.cfg.op_deadline;
        let mut attempt: u32 = 0;
        loop {
            match self.call_once(shard, payload, deadline) {
                Ok(resp) => {
                    shard.record_success(self.cfg.down_after);
                    return Ok(resp);
                }
                Err(e) => {
                    shard.record_failure(self.cfg.down_after);
                    attempt += 1;
                    if attempt > self.cfg.retries {
                        return Err(e);
                    }
                    // Exponential backoff with deterministic jitter in
                    // [0.5, 1.0)× — desynchronises retry storms without
                    // nondeterminism the chaos suite couldn't replay.
                    let exp = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1u32 << (attempt - 1).min(16));
                    let capped = exp.min(self.cfg.backoff_max);
                    let sleep = capped.mul_f64(0.5 + 0.5 * self.jitter());
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() || sleep >= remaining {
                        return Err(e); // budget exhausted: fail now, not late
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// One attempt: (re)dial if needed, tighten the read deadline to
    /// the remaining budget, round-trip. Any error drops the
    /// connection — a half-written or half-read frame leaves the stream
    /// unsynchronisable, so reconnection IS the resync protocol.
    fn call_once(
        &self,
        shard: &Shard,
        payload: &str,
        deadline: Instant,
    ) -> std::io::Result<String> {
        let budget = |cap: Option<Duration>| -> std::io::Result<Option<Duration>> {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "op deadline exhausted",
                ));
            }
            Ok(Some(cap.map_or(remaining, |c| c.min(remaining))))
        };
        let mut conn = shard.conn.lock().unwrap_or_else(|p| p.into_inner());
        let client = match conn.as_mut() {
            Some(client) => client,
            None => {
                let opts = ClientOptions {
                    connect_timeout: budget(self.cfg.client.connect_timeout)?,
                    read_timeout: budget(self.cfg.client.read_timeout)?,
                    write_timeout: budget(self.cfg.client.write_timeout)?,
                };
                conn.insert(Client::connect_with(&shard.addr, &opts)?)
            }
        };
        let result = client
            .set_read_timeout(budget(self.cfg.client.read_timeout)?)
            .and_then(|()| client.call(payload));
        if result.is_err() {
            *conn = None;
        }
        result
    }

    /// Scatters `payload` to every non-Down shard in parallel, returning
    /// per-shard results (`None` for skipped-Down and failed shards)
    /// plus the ok count.
    fn scatter(&self, payload: &str) -> (Vec<Option<String>>, usize) {
        let mut results: Vec<Option<String>> = vec![None; self.shards.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    // Breaker open: don't even try (the prober owns
                    // re-admission), keep the deadline for live shards.
                    if shard.health() == ShardHealth::Down {
                        return None;
                    }
                    Some(scope.spawn(move || self.call_shard(shard, payload).ok()))
                })
                .collect();
            for (slot, handle) in results.iter_mut().zip(handles) {
                if let Some(handle) = handle {
                    *slot = handle.join().unwrap_or(None);
                }
            }
        });
        let ok = results.iter().filter(|r| r.is_some()).count();
        (results, ok)
    }

    /// The fleet's degradation preamble: `"partial":…,"shards_ok":…,
    /// "shards_total":…` (PROTOCOL.md §7).
    fn degradation_fields(&self, ok: usize) -> String {
        format!(
            "\"partial\":{},\"shards_ok\":{ok},\"shards_total\":{}",
            ok < self.shards.len(),
            self.shards.len()
        )
    }

    fn route(&self, obj: &Json, payload: &str) -> Result<String, String> {
        let echo = req_echo(obj);
        let op = obj
            .get("op")
            .ok_or("missing field \"op\"")?
            .as_str()
            .ok_or("\"op\" must be a string")?;
        match op {
            // Answered locally: the front-end's own liveness, not the
            // shards' (probe those via `stats` health).
            "ping" => Ok(format!("{{{echo}\"ok\":true,\"pong\":true}}")),
            "knn" => self.route_knn(obj, &echo, payload),
            "upsert" | "remove" => self.route_write(obj, &echo, payload),
            "embed" | "distance" => self.route_any_shard(&echo, payload),
            "compact" => self.route_compact(&echo, payload),
            "stats" => self.route_stats(&echo, payload),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Scatter the query to every live shard, merge local top-k lists
    /// through the exact path. Shards hold disjoint ids, so the union
    /// of per-shard top-k contains the global top-k and the merge is
    /// bit-exact vs an unsharded server (DESIGN.md §13.3).
    fn route_knn(&self, obj: &Json, echo: &str, payload: &str) -> Result<String, String> {
        let k = obj
            .get("k")
            .ok_or("missing field \"k\"")?
            .as_u64()
            .filter(|&k| k <= MAX_K as u64)
            .ok_or_else(|| format!("\"k\" must be an integer in 0..={MAX_K}"))?
            as usize;
        let (results, ok) = self.scatter(payload);
        if ok == 0 {
            return Err("no shard reachable".into());
        }
        if self.cfg.fail_closed && ok < self.shards.len() {
            return Err(format!(
                "fail-closed: {} of {} shards unavailable",
                self.shards.len() - ok,
                self.shards.len()
            ));
        }
        let mut partials = Vec::with_capacity(ok);
        for resp in results.into_iter().flatten() {
            partials.push(parse_hits(&resp)?);
        }
        let merged = merge_partials(partials, k);
        let rows: Vec<String> = merged
            .iter()
            .enumerate()
            .map(|(rank, (id, dist))| {
                format!(
                    "{{\"rank\":{},\"index\":{id},\"distance\":{dist:.6}}}",
                    rank + 1
                )
            })
            .collect();
        Ok(format!(
            "{{{echo}\"ok\":true,{},\"hits\":[{}]}}",
            self.degradation_fields(ok),
            rows.join(",")
        ))
    }

    /// Route a write to its owning shard by the placement hash. A Down
    /// owner errors in-band immediately — writes never hang and never
    /// silently land on the wrong shard.
    fn route_write(&self, obj: &Json, _echo: &str, payload: &str) -> Result<String, String> {
        let id = obj
            .get("id")
            .ok_or("missing field \"id\"")?
            .as_u64()
            .ok_or("\"id\" must be a non-negative integer")?;
        let shard = &self.shards[shard_for(id, self.shards.len())];
        if shard.health() == ShardHealth::Down {
            return Err(format!("shard {} is down; write refused", shard.addr));
        }
        match self.call_shard(shard, payload) {
            // The downstream response already carries the req echo and
            // the op's fields — forward it verbatim.
            Ok(resp) => Ok(resp),
            Err(e) => Err(format!("shard {}: {e}", shard.addr)),
        }
    }

    /// Ops any one shard can answer (every shard holds the full model):
    /// round-robin over live shards, failing over to the next.
    fn route_any_shard(&self, _echo: &str, payload: &str) -> Result<String, String> {
        let n = self.shards.len();
        let start = (self.jitter() * n as f64) as usize % n;
        let mut last_err = None;
        for i in 0..n {
            let shard = &self.shards[(start + i) % n];
            if shard.health() == ShardHealth::Down {
                continue;
            }
            match self.call_shard(shard, payload) {
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = Some(format!("shard {}: {e}", shard.addr)),
            }
        }
        Err(last_err.unwrap_or_else(|| "no shard reachable".into()))
    }

    /// Scatter `compact`, sum the per-shard sealed counts.
    fn route_compact(&self, echo: &str, payload: &str) -> Result<String, String> {
        let (results, ok) = self.scatter(payload);
        if ok == 0 {
            return Err("no shard reachable".into());
        }
        let mut sealed: u64 = 0;
        for resp in results.into_iter().flatten() {
            sealed += parse_ok_field(&resp, "sealed")?;
        }
        Ok(format!(
            "{{{echo}\"ok\":true,{},\"sealed\":{sealed}}}",
            self.degradation_fields(ok)
        ))
    }

    /// Scatter `stats`, sum the additive index fields, and report
    /// fleet-level health (`"health":["up","down",...]` in shard
    /// order). Counters of unreachable shards are simply missing from
    /// the sums — `shards_ok` says how many contributed.
    fn route_stats(&self, echo: &str, payload: &str) -> Result<String, String> {
        let (results, ok) = self.scatter(payload);
        if ok == 0 {
            return Err("no shard reachable".into());
        }
        let mut sums: [u64; 4] = [0; 4]; // size, buffer, memory_bytes, shards
        for resp in results.into_iter().flatten() {
            for (slot, key) in sums
                .iter_mut()
                .zip(["size", "buffer", "memory_bytes", "shards"])
            {
                *slot += parse_ok_field(&resp, key)?;
            }
        }
        let health: Vec<String> = self
            .shards
            .iter()
            .map(|s| format!("\"{}\"", s.health().as_str()))
            .collect();
        Ok(format!(
            "{{{echo}\"ok\":true,{},\"size\":{},\"buffer\":{},\"memory_bytes\":{},\"shards\":{},\"health\":[{}]}}",
            self.degradation_fields(ok),
            sums[0],
            sums[1],
            sums[2],
            sums[3],
            health.join(",")
        ))
    }
}

impl FrameHandler for Fleet {
    fn handle_frame(&self, payload: &str) -> String {
        let obj = match parse(payload) {
            Ok(v) => v,
            Err(e) => return err_response("", &format!("malformed JSON: {e}")),
        };
        let echo = req_echo(&obj);
        match self.route(&obj, payload) {
            Ok(resp) => resp,
            Err(msg) => err_response(&echo, &msg),
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One fresh-connection `ping` round trip (the probe primitive: never
/// touches the persistent per-shard connection, so probing cannot
/// interfere with live traffic).
fn probe_once(addr: &str, opts: &ClientOptions) -> std::io::Result<()> {
    let mut client = Client::connect_with(addr, opts)?;
    let resp = client.call("{\"op\":\"ping\"}")?;
    if resp.contains("\"pong\":true") {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected ping response: {resp}"),
        ))
    }
}

/// The background health prober: every `probe_interval`, ping each
/// non-Up shard over a fresh connection. Success walks the state
/// machine back up (Down → half-open Degraded → Up); failure keeps the
/// breaker open. Sleeps in small slices so shutdown is prompt.
fn spawn_prober(
    shards: Vec<Arc<Shard>>,
    cfg: FleetConfig,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let slice = Duration::from_millis(20);
        loop {
            let mut slept = Duration::ZERO;
            while slept < cfg.probe_interval {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(slice);
                slept += slice;
            }
            for shard in &shards {
                if shard.health() == ShardHealth::Up {
                    continue;
                }
                match probe_once(&shard.addr, &cfg.client) {
                    Ok(()) => shard.record_success(cfg.down_after),
                    Err(_) => shard.record_failure(cfg.down_after),
                }
            }
        }
    })
}

/// Extracts `(id, distance)` pairs from a downstream `knn` response.
/// An in-band downstream error propagates as this fleet request's error
/// (the shard answered — the request itself was bad).
fn parse_hits(resp: &str) -> Result<Vec<(u64, f64)>, String> {
    let obj = parse(resp).map_err(|e| format!("malformed shard response: {e}"))?;
    check_ok(&obj)?;
    let hits = obj
        .get("hits")
        .and_then(Json::as_arr)
        .ok_or("shard response missing \"hits\"")?;
    hits.iter()
        .map(|h| {
            let id = h
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("shard hit missing \"index\"")?;
            let dist = h
                .get("distance")
                .and_then(Json::as_f64)
                .ok_or("shard hit missing \"distance\"")?;
            Ok((id, dist))
        })
        .collect()
}

/// Extracts one non-negative integer field from an ok downstream
/// response.
fn parse_ok_field(resp: &str, key: &str) -> Result<u64, String> {
    let obj = parse(resp).map_err(|e| format!("malformed shard response: {e}"))?;
    check_ok(&obj)?;
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("shard response missing \"{key}\""))
}

fn check_ok(obj: &Json) -> Result<(), String> {
    match obj.get("ok") {
        Some(Json::Bool(true)) => Ok(()),
        _ => Err(obj
            .get("error")
            .and_then(Json::as_str)
            .map_or_else(|| "shard reported an error".into(), str::to_string)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_machine_walks_down_and_back_up() {
        let shard = Shard {
            addr: "test".into(),
            conn: Mutex::new(None),
            state: Mutex::new(HealthState {
                health: ShardHealth::Up,
                consecutive_fails: 0,
            }),
        };
        shard.record_failure(3);
        assert_eq!(shard.health(), ShardHealth::Degraded);
        shard.record_failure(3);
        assert_eq!(shard.health(), ShardHealth::Degraded);
        shard.record_failure(3);
        assert_eq!(shard.health(), ShardHealth::Down);
        // Half-open: one probe success re-admits on probation...
        shard.record_success(3);
        assert_eq!(shard.health(), ShardHealth::Degraded);
        // ...where a single failure re-trips the breaker...
        shard.record_failure(3);
        assert_eq!(shard.health(), ShardHealth::Down);
        // ...and a success streak goes Down → Degraded → Up.
        shard.record_success(3);
        shard.record_success(3);
        assert_eq!(shard.health(), ShardHealth::Up);
    }

    #[test]
    fn jitter_stream_is_deterministic_and_in_range() {
        let a: Vec<u64> = (0..64).map(|n| splitmix64(0x5EED ^ n)).collect();
        let b: Vec<u64> = (0..64).map(|n| splitmix64(0x5EED ^ n)).collect();
        assert_eq!(a, b);
        for n in 0..1000u64 {
            let j = (splitmix64(7 ^ n) >> 11) as f64 / (1u64 << 53) as f64;
            assert!((0.0..1.0).contains(&j), "{j}");
        }
    }

    #[test]
    fn downstream_response_parsers() {
        let hits = parse_hits(
            "{\"ok\":true,\"hits\":[{\"rank\":1,\"index\":7,\"distance\":0.125000},{\"rank\":2,\"index\":3,\"distance\":2.500000}]}",
        )
        .unwrap();
        assert_eq!(hits, vec![(7, 0.125), (3, 2.5)]);
        assert_eq!(
            parse_ok_field("{\"ok\":true,\"sealed\":42}", "sealed"),
            Ok(42)
        );
        let err = parse_hits("{\"ok\":false,\"error\":\"boom\"}").unwrap_err();
        assert_eq!(err, "boom");
    }
}
