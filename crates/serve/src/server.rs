//! [`Server`]: the concurrent serving runtime over an [`Engine`].
//!
//! Request flow for an embedding-backed query:
//!
//! ```text
//! caller ──► LRU cache ──miss──► micro-batcher ──► fused InferCtx forward
//!    │           │ hit                                   (worker pool)
//!    │           ▼
//!    └──► MutableIndex snapshot ──► (id, distance) hits
//! ```
//!
//! Everything is `&self`: the server is shared across any number of
//! threads (the CLI's stdin dispatcher, the load generator's clients, the
//! concurrency tests).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use trajcl_engine::{Engine, EngineError};
use trajcl_geo::{validate_batch, Trajectory};
use trajcl_index::{
    Durability, IndexOptions, Metric, Quantization, RealFs, ScanMode, ShardedIndex, Wal, WalFs,
};

use crate::batcher::{BatchPolicy, BatchStats, Batcher, EmbedJob};
use crate::cache::{content_hash, LruCache};
use crate::net::SessionOptions;
use crate::router::ShardRouter;

/// Durability configuration for [`ServeConfig::wal`]: where the
/// per-shard write-ahead logs live and how they sync. See DESIGN.md §15
/// for the on-disk format and the checkpoint/truncate protocol.
#[derive(Clone)]
pub struct WalConfig {
    /// Directory holding the per-shard logs and checkpoints
    /// (`shardN.log` / `shardN.ckpt`) plus the `wal.meta` layout guard.
    /// Created if absent; a directory written under a different shard
    /// count or dimensionality is rejected at startup (shard placement
    /// is id-hash, so the logs only replay under the layout that wrote
    /// them).
    pub dir: PathBuf,
    /// Sync policy. [`Durability::Fsync`] (the default) group-fsyncs
    /// every record before the write acks — ack implies durable.
    /// [`Durability::Buffered`] appends without syncing: writes survive
    /// a process crash (the OS holds the pages) but not power loss.
    /// [`Durability::Ephemeral`] here behaves like `Buffered` — callers
    /// wanting no log at all leave [`ServeConfig::wal`] unset.
    pub durability: Durability,
    /// Per-shard log size that triggers an automatic checkpoint
    /// (snapshot + log truncate, no index compaction). Default 64 MiB.
    pub checkpoint_bytes: u64,
    /// Filesystem seam the logs go through — [`RealFs`] in production,
    /// a [`trajcl_index::CrashPointFs`] injector in durability tests.
    pub fs: Arc<dyn WalFs>,
}

impl WalConfig {
    /// A WAL under `dir`: full fsync durability, 64 MiB auto-checkpoint
    /// threshold, the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            durability: Durability::Fsync,
            checkpoint_bytes: 64 << 20,
            fs: Arc::new(RealFs),
        }
    }
}

impl std::fmt::Debug for WalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalConfig")
            .field("dir", &self.dir)
            .field("durability", &self.durability)
            .field("checkpoint_bytes", &self.checkpoint_bytes)
            .finish_non_exhaustive()
    }
}

/// What WAL recovery replayed while a [`Server`] started up (summed
/// over shards) — surfaced so operators can log a recovery transcript.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalRecoveryStats {
    /// Rows restored from shard checkpoints.
    pub checkpoint_rows: usize,
    /// Log records replayed on top of the checkpoints.
    pub replayed_ops: usize,
    /// Torn trailing bytes discarded from the logs (a crash mid-append;
    /// by the ack-implies-durable contract these were never
    /// acknowledged).
    pub truncated_bytes: u64,
}

/// Tuning knobs for [`Server::new`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batcher worker threads (each owns an `InferCtx` from the pool).
    pub workers: usize,
    /// Maximum trajectories fused into one forward pass.
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open for stragglers.
    pub max_wait: Duration,
    /// Bounded request-queue capacity (submitters block when full).
    pub queue_cap: usize,
    /// LRU embedding-cache entries; `0` disables the cache.
    pub cache_cap: usize,
    /// IVF cells for the server's mutable index; `None` inherits the
    /// engine's configuration. Setting it here (instead of building an
    /// engine-side index the server would never consult) avoids training
    /// k-means twice over the same table.
    pub ivf_nlist: Option<usize>,
    /// Storage quantization of the index's sealed part; `None` inherits
    /// the engine's configuration. [`Quantization::Sq8`] shrinks sealed
    /// vectors to one byte per dimension, [`Quantization::Pq`] to `m`
    /// bytes per *vector*; the sealed part keeps no exact copy to rescore
    /// against (by design: that copy would forfeit the compression), so
    /// served quantized distances are asymmetric (exact query vs
    /// quantized rows) within the codebook's error bound — except where
    /// [`ServeConfig::rescore_sealed`] recovers exact values.
    pub quantization: Option<Quantization>,
    /// Scan kernel for the sealed quantized part; `None` inherits the
    /// engine's configuration. [`ScanMode::Symmetric`] quantizes queries
    /// with the sealed SQ8 codebook too and scans in integer arithmetic
    /// (runtime-dispatched SIMD kernels); exactness of served distances
    /// is unchanged wherever [`ServeConfig::rescore_sealed`] applies.
    pub scan: Option<ScanMode>,
    /// Rescore sealed quantized hits against the engine's cached exact
    /// embedding table (default `true`). Ids seeded from the engine's
    /// database and never re-upserted since still match that table, so
    /// their served distances come back exact; ids upserted through the
    /// server have no exact counterpart and keep asymmetric distances
    /// (the mixed-ordering caveat documented on
    /// [`trajcl_index::IndexSnapshot::search_rescored`]). No effect on
    /// unquantized indexes or engines without cached embeddings.
    pub rescore_sealed: bool,
    /// How many hash-on-id index shards to partition the served vectors
    /// into; `None` inherits the engine's configuration
    /// ([`trajcl_engine::Engine`] shards, 1 unless saved otherwise).
    /// Each shard has its own write lock, snapshot and compaction; kNN
    /// scatter-gathers across all of them (see DESIGN.md §13).
    pub shards: Option<usize>,
    /// Network sessions quiet for this long are reaped (socket shut
    /// down, threads wound down) — `--idle-timeout-ms` on the CLI,
    /// `None` disables reaping. Applies to [`crate::net::listen`]
    /// sessions, not the stdin/stdout pipe.
    pub idle_timeout: Option<Duration>,
    /// Per-write deadline on network sessions: a client that stops
    /// draining its socket is dropped instead of wedging a handler
    /// thread. `None` disables it.
    pub session_write_timeout: Option<Duration>,
    /// Write-ahead logging (`None` disables durability — the seed-era
    /// behaviour). With a WAL, [`Server::new`] first *recovers*: each
    /// shard reloads its last checkpoint (or the engine-seeded table on
    /// first boot) and replays its log tail; afterwards every
    /// upsert/remove/compact is appended and made durable per
    /// [`WalConfig::durability`] **before** it is applied or
    /// acknowledged.
    pub wal: Option<WalConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            max_batch: 128,
            max_wait: Duration::from_millis(2),
            queue_cap: 1024,
            cache_cap: 4096,
            ivf_nlist: None,
            quantization: None,
            scan: None,
            rescore_sealed: true,
            shards: None,
            idle_timeout: SessionOptions::default().idle_timeout,
            session_write_timeout: SessionOptions::default().write_timeout,
            wal: None,
        }
    }
}

/// A point-in-time view of the server's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Query and mutation requests answered (embed/knn/distance/upsert/
    /// remove/compact; `stats` reads themselves are not counted).
    pub requests: u64,
    /// Fused forward passes run by the batcher.
    pub batches: u64,
    /// Embed jobs served through the batcher.
    pub batched_jobs: u64,
    /// Trajectories embedded through the batcher.
    pub batched_trajs: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Live vectors in the index.
    pub index_len: usize,
    /// Vectors in the index write buffer (not yet compacted).
    pub buffer_len: usize,
    /// Index snapshot generation.
    pub generation: u64,
    /// Approximate resident bytes of the served index (sealed part —
    /// quantized when SQ8 is configured — plus write buffer).
    pub index_memory_bytes: usize,
    /// Number of index shards the server scatter-gathers across.
    pub shards: usize,
    /// Bytes currently in the per-shard write-ahead logs (how much
    /// replay a crash right now would cost); `0` without a WAL.
    pub wal_log_bytes: u64,
}

/// The concurrent micro-batching query server (see module docs).
pub struct Server {
    engine: Arc<Engine>,
    /// Index reads/writes all go through the router: id-hash shard
    /// placement, scatter-gather kNN, and sealed-hit rescoring with
    /// dirty-id tracking live there.
    router: ShardRouter,
    batcher: Mutex<Option<Batcher>>,
    /// `None` after shutdown; dropped before joining workers so the queue
    /// actually closes (the batcher's own sender is not the last one).
    tx: Mutex<Option<mpsc::SyncSender<EmbedJob>>>,
    cache: Option<Mutex<LruCache>>,
    session: SessionOptions,
    nprobe: usize,
    batch_stats: Arc<BatchStats>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// What WAL recovery replayed at startup; `None` without a WAL.
    wal_recovery: Option<WalRecoveryStats>,
}

/// Opens (or validates) the WAL directory, replays each shard's
/// checkpoint + log tail into `router`, and attaches the logs — after
/// this, the router's write path is durable. The `wal.meta` guard pins
/// the directory to one `(shards, dim)` layout: id-hash placement means
/// a log written under a different shard count would replay ids into
/// the wrong shards.
fn recover_wal(
    router: &mut ShardRouter,
    cfg: &WalConfig,
    nshards: usize,
    dim: usize,
) -> Result<WalRecoveryStats, EngineError> {
    std::fs::create_dir_all(&cfg.dir).map_err(EngineError::Io)?;
    let meta_path = cfg.dir.join("wal.meta");
    let meta = format!("trajcl-wal shards {nshards} dim {dim}\n");
    match std::fs::read_to_string(&meta_path) {
        Ok(existing) if existing == meta => {}
        Ok(existing) => {
            return Err(EngineError::InvalidInput(format!(
                "WAL dir {} has layout {:?}, this server needs {:?} — \
                 shard count and dimension are part of the log contract",
                cfg.dir.display(),
                existing.trim(),
                meta.trim(),
            )));
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            trajcl_index::atomic_write(cfg.fs.as_ref(), &meta_path, meta.as_bytes())
                .map_err(EngineError::Io)?;
        }
        Err(e) => return Err(EngineError::Io(e)),
    }
    let mut stats = WalRecoveryStats::default();
    let mut wals = Vec::with_capacity(nshards);
    for s in 0..nshards {
        let (wal, recovery) = Wal::open(
            &cfg.dir,
            &format!("shard{s}"),
            cfg.durability,
            Arc::clone(&cfg.fs),
        )
        .map_err(EngineError::Io)?;
        if let Some(ckpt) = &recovery.checkpoint {
            stats.checkpoint_rows += ckpt.entries.len();
            router.reset_shard_from_checkpoint(s, &ckpt.entries);
        }
        stats.replayed_ops += recovery.ops.len();
        stats.truncated_bytes += recovery.truncated_tail_bytes;
        for op in &recovery.ops {
            router.replay_op(s, op);
        }
        wals.push(wal);
    }
    router.attach_wal(wals, cfg.checkpoint_bytes);
    Ok(stats)
}

/// The error a caller sees when the batcher hands back a different row
/// count than the job submitted — a worker-side invariant break surfaced
/// as a per-request failure instead of a served-thread panic.
fn row_count_mismatch() -> EngineError {
    EngineError::InvalidInput("batcher returned a mismatched row count".into())
}

impl Server {
    /// Wraps `engine` in a serving runtime, seeding the sharded index
    /// from the engine's database embeddings (ids are database
    /// positions, routed to shards by id hash).
    ///
    /// # Errors
    /// [`EngineError::NoEmbedding`] for heuristic (no-embedding) backends —
    /// serve them through [`Engine::knn`] directly.
    pub fn new(engine: Arc<Engine>, cfg: ServeConfig) -> Result<Server, EngineError> {
        if !engine.backend().supports_embedding() {
            return Err(EngineError::NoEmbedding {
                backend: engine.backend().name().to_string(),
            });
        }
        let dim = engine.backend().dim();
        let opts = IndexOptions {
            nlist: cfg.ivf_nlist.or(engine.nlist()),
            seed: engine.seed(),
            quantization: cfg.quantization.unwrap_or(engine.quantization()),
            rescore_factor: engine.rescore_factor(),
            scan: cfg.scan.unwrap_or(engine.scan_mode()),
            durability: cfg
                .wal
                .as_ref()
                .map_or(engine.durability(), |w| w.durability),
        };
        let nshards = cfg.shards.unwrap_or(engine.shards()).max(1);
        let index = match engine.embeddings() {
            Some(table) => ShardedIndex::from_table_with(
                (0..table.shape().rows() as u64).collect(),
                table,
                Metric::L1,
                opts,
                nshards,
            ),
            None => ShardedIndex::with_options(dim, Metric::L1, opts, nshards),
        };
        let mut router = ShardRouter::new(index, cfg.rescore_sealed);
        let wal_recovery = match &cfg.wal {
            Some(wal_cfg) => Some(recover_wal(&mut router, wal_cfg, nshards, dim)?),
            None => None,
        };
        let batch_stats = Arc::new(BatchStats::default());
        let batcher = Batcher::spawn(
            Arc::clone(&engine),
            cfg.workers,
            cfg.queue_cap,
            BatchPolicy {
                max_batch: cfg.max_batch.max(1),
                max_wait: cfg.max_wait,
            },
            Arc::clone(&batch_stats),
        )?;
        let tx = batcher.sender();
        let nprobe = engine.nprobe();
        Ok(Server {
            engine,
            router,
            batcher: Mutex::new(Some(batcher)),
            tx: Mutex::new(Some(tx)),
            cache: (cfg.cache_cap > 0).then(|| Mutex::new(LruCache::new(cfg.cache_cap))),
            session: SessionOptions {
                idle_timeout: cfg.idle_timeout,
                write_timeout: cfg.session_write_timeout,
            },
            nprobe,
            batch_stats,
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            wal_recovery,
        })
    }

    /// What WAL recovery replayed when this server started; `None`
    /// without a WAL. The CLI prints this as the recovery transcript.
    pub fn wal_recovery(&self) -> Option<WalRecoveryStats> {
        self.wal_recovery
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The per-session network deadlines this server was configured
    /// with ([`ServeConfig::idle_timeout`] /
    /// [`ServeConfig::session_write_timeout`]); [`crate::net::listen`]
    /// applies them to every accepted connection.
    pub fn session_options(&self) -> SessionOptions {
        self.session
    }

    /// Embeds trajectories through the batcher, no cache consulted.
    fn embed_uncached(&self, trajs: Vec<Trajectory>) -> Result<Vec<Vec<f32>>, EngineError> {
        validate_batch(&trajs)?;
        let (resp, rx) = mpsc::sync_channel(1);
        let tx = {
            let guard = self.tx.lock().unwrap_or_else(|p| p.into_inner());
            guard.clone()
        };
        let tx = tx.ok_or_else(|| EngineError::InvalidInput("server is shutting down".into()))?;
        // Advertise the in-flight submission BEFORE the (possibly blocking)
        // send, so a collecting worker knows a straggler is coming.
        self.batch_stats.pending.fetch_add(1, Ordering::AcqRel);
        tx.send(EmbedJob { trajs, resp }).map_err(|_| {
            self.batch_stats.pending.fetch_sub(1, Ordering::AcqRel);
            EngineError::InvalidInput("server is shutting down".into())
        })?;
        rx.recv()
            .map_err(|_| EngineError::InvalidInput("serve worker dropped the response".into()))?
    }

    /// Embeds one trajectory: LRU cache first, micro-batcher on a miss.
    pub fn embed(&self, traj: &Trajectory) -> Result<Vec<f32>, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.embed_inner(traj)
    }

    fn embed_inner(&self, traj: &Trajectory) -> Result<Vec<f32>, EngineError> {
        let mut rows = self.embed_many(std::slice::from_ref(traj))?;
        rows.pop().ok_or_else(row_count_mismatch)
    }

    /// Embeds several trajectories: the cache is consulted per trajectory
    /// and ALL misses go to the batcher as one job (one queue round-trip,
    /// one straggler window — `distance` pays this once, not twice).
    fn embed_many(&self, trajs: &[Trajectory]) -> Result<Vec<Vec<f32>>, EngineError> {
        let keys: Vec<u64> = trajs.iter().map(content_hash).collect();
        let mut rows: Vec<Option<Vec<f32>>> = vec![None; trajs.len()];
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
            for ((row, traj), &key) in rows.iter_mut().zip(trajs).zip(&keys) {
                if let Some(hit) = cache.get(key, traj) {
                    *row = Some(hit.to_vec());
                }
            }
        }
        let missing: Vec<usize> = (0..trajs.len()).filter(|&i| rows[i].is_none()).collect();
        self.cache_hits
            .fetch_add((trajs.len() - missing.len()) as u64, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            let submit: Vec<Trajectory> = missing.iter().map(|&i| trajs[i].clone()).collect();
            let fresh = self.embed_uncached(submit)?;
            let mut cache = self
                .cache
                .as_ref()
                .map(|c| c.lock().unwrap_or_else(|p| p.into_inner()));
            for (&i, row) in missing.iter().zip(fresh) {
                if let Some(cache) = cache.as_mut() {
                    cache.put(keys[i], trajs[i].clone(), row.clone());
                }
                rows[i] = Some(row);
            }
        }
        rows.into_iter()
            .map(|r| r.ok_or_else(row_count_mismatch))
            .collect()
    }

    /// k nearest indexed trajectories to `query`: `(id, distance)`
    /// ascending, against one consistent index snapshot. When
    /// [`ServeConfig::rescore_sealed`] is on (the default) and the engine
    /// carries its cached embedding table, sealed quantized hits whose
    /// ids still match that table are rescored to exact distances.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Result<Vec<(u64, f64)>, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let q = self.embed_inner(query)?;
        Ok(self
            .router
            .search(self.engine.embeddings(), &q, k, self.nprobe))
    }

    /// L1 distance between two trajectories in embedding space (both
    /// trajectories share one cache pass and one batcher submission).
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut rows = self.embed_many(&[a.clone(), b.clone()])?;
        let (ea, eb) = match (rows.pop(), rows.pop()) {
            (Some(eb), Some(ea)) => (ea, eb),
            _ => return Err(row_count_mismatch()),
        };
        Ok(ea.iter().zip(&eb).map(|(x, y)| (x - y).abs() as f64).sum())
    }

    /// Inserts or replaces trajectory `id` in the served index (embedding
    /// it first). Returns `true` when the id already existed. With a WAL
    /// configured, `Ok` means the record is durable per
    /// [`WalConfig::durability`] — an `Err` write was never applied.
    pub fn upsert(&self, id: u64, traj: &Trajectory) -> Result<bool, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let v = self.embed_inner(traj)?;
        self.router.upsert(id, v).map_err(EngineError::Io)
    }

    /// Removes `id` from the served index; `true` when it was present.
    ///
    /// # Errors
    /// Only with a WAL configured (same durable-ack contract as
    /// [`Server::upsert`]).
    pub fn remove(&self, id: u64) -> Result<bool, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.router.remove(id).map_err(EngineError::Io)
    }

    /// Re-trains every shard (folds write buffers and tombstones into
    /// fresh sealed parts, each shard independently); returns the number
    /// of live vectors sealed. With a WAL configured every shard is also
    /// checkpointed (its log truncated), so `Ok` means the compacted
    /// state is the new recovery baseline.
    ///
    /// # Errors
    /// Only with a WAL configured.
    pub fn compact(&self) -> Result<usize, EngineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.router.compact().map_err(EngineError::Io)
    }

    /// The shard router (per-shard diagnostics, snapshots).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The served sharded index (snapshots, diagnostics).
    pub fn index(&self) -> &ShardedIndex {
        self.router.index()
    }

    /// A point-in-time copy of the server's counters (the index fields
    /// all read from ONE snapshot set, so they are mutually consistent
    /// per shard even while writers churn).
    pub fn stats(&self) -> ServerStats {
        let snap = self.router.snapshot();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batch_stats.batches.load(Ordering::Relaxed),
            batched_jobs: self.batch_stats.jobs.load(Ordering::Relaxed),
            batched_trajs: self.batch_stats.trajs.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            index_len: snap.len(),
            buffer_len: snap.buffer_len(),
            generation: snap.generation(),
            index_memory_bytes: snap.memory_bytes(),
            shards: self.router.shards(),
            wal_log_bytes: self.router.wal_log_bytes(),
        }
    }

    /// Stops the batcher workers (served requests drain first). Called by
    /// `Drop`; explicit for tests and the CLI's clean-exit path.
    pub fn shutdown(&self) {
        // Drop our sender first: workers exit once every sender is gone.
        drop(self.tx.lock().unwrap_or_else(|p| p.into_inner()).take());
        let batcher = {
            let mut guard = self.batcher.lock().unwrap_or_else(|p| p.into_inner());
            guard.take()
        };
        if let Some(batcher) = batcher {
            batcher.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
