//! [`ShardRouter`]: the serving layer's view of the sharded index —
//! id-hash write routing, scatter-gather search, and sealed-hit exact
//! rescoring with dirty-id tracking.
//!
//! The router owns what used to be the server's index-side state: a
//! [`ShardedIndex`] (any shard count; 1 is the unsharded degenerate
//! case) plus the copy-on-write set of ids whose vectors were upserted
//! over the wire and therefore no longer match the engine's cached
//! embedding table. [`Server`](crate::Server) delegates every index
//! operation here; the batcher/cache half of serving stays in the
//! server. See `PROTOCOL.md` for how shard routing surfaces (spoiler:
//! it doesn't — clients address ids, never shards) and DESIGN.md §13
//! for the architecture.

use std::collections::HashSet;
use std::io;
use std::sync::{Arc, RwLock};

use trajcl_index::{CheckpointEntry, ExactRescorer, ShardedIndex, ShardedSnapshot, Wal, WalOp};
use trajcl_tensor::Tensor;

/// [`ExactRescorer`] over the engine's cached embedding table: ids are
/// table row positions (how the server seeds the index), valid only
/// while the id was never re-upserted (tracked by [`ShardRouter`]).
struct TableRescorer<'a> {
    table: &'a Tensor,
    dirty: &'a HashSet<u64>,
}

impl ExactRescorer for TableRescorer<'_> {
    fn exact_vector(&self, id: u64) -> Option<&[f32]> {
        ((id as usize) < self.table.shape().rows() && !self.dirty.contains(&id))
            .then(|| self.table.row(id as usize))
    }
}

/// One shard's durability state: its write-ahead log plus the gate that
/// orders appends against checkpoints. Writers hold the gate shared
/// (append + apply can interleave freely — the WAL's own group commit
/// orders the records); a checkpoint holds it exclusive, so the snapshot
/// it captures provably covers every record in the log it truncates.
struct WalShard {
    wal: Wal,
    gate: RwLock<()>,
}

/// The router's optional durability layer: one WAL per shard (same
/// id-hash partition as the index, so each shard's log replays into
/// exactly that shard) plus the auto-checkpoint threshold.
struct DurableLog {
    shards: Vec<WalShard>,
    /// A shard whose log grows past this many bytes is checkpointed on
    /// the next write (snapshot + truncate, no index compaction).
    checkpoint_bytes: u64,
}

/// Routes index reads and writes across the shards of a
/// [`ShardedIndex`] (see the module docs).
///
/// With a WAL attached ([`ShardRouter::attach_wal`]), every mutation is
/// appended to the owning shard's log and group-fsync'd **before** it
/// touches the index — `Ok` from [`ShardRouter::upsert`] /
/// [`ShardRouter::remove`] / [`ShardRouter::compact`] means the op is
/// durable. Without one, the write methods never return `Err`.
///
/// # Examples
///
/// ```
/// use trajcl_index::{IndexOptions, Metric, ShardedIndex};
/// use trajcl_serve::ShardRouter;
///
/// # fn main() -> std::io::Result<()> {
/// let index = ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), 4);
/// let router = ShardRouter::new(index, true);
/// for id in 0..16u64 {
///     router.upsert(id, vec![id as f32, 0.0])?;
/// }
/// assert_eq!(router.shards(), 4);
///
/// // Scatter-gather kNN over all four shards (no exact table here, so
/// // no rescoring — distances are exact f32 anyway).
/// let hits = router.search(None, &[6.9, 0.0], 2, usize::MAX);
/// assert_eq!(hits[0].0, 7);
/// assert!(router.remove(7)?);
/// assert_eq!(router.compact()?, 15);
/// # Ok(())
/// # }
/// ```
pub struct ShardRouter {
    index: ShardedIndex,
    /// Whether sealed quantized hits are rescored against the exact
    /// table handed to [`ShardRouter::search`]
    /// ([`ServeConfig::rescore_sealed`](crate::ServeConfig::rescore_sealed)).
    rescore_sealed: bool,
    /// Ids whose vectors may disagree with the exact table (everything
    /// ever upserted through the router). Sealed hits on these ids are
    /// never rescored — the table row would be stale. Copy-on-write
    /// behind an `Arc` so searches snapshot it with one momentary read
    /// lock instead of holding the lock across the scan. The set only
    /// grows (bounded by distinct upserted ids): pruning on `remove`
    /// would race a concurrent re-upsert of the same id, and a stale
    /// `true` is merely conservative (skips a rescore) while a stale
    /// `false` would serve wrong distances.
    dirty: RwLock<Arc<HashSet<u64>>>,
    /// Per-shard write-ahead logs; `None` for an ephemeral router.
    wal: Option<DurableLog>,
}

impl ShardRouter {
    /// Wraps a sharded index. `rescore_sealed` gates whether
    /// [`ShardRouter::search`] rescores sealed quantized hits against
    /// the exact table it is given.
    pub fn new(index: ShardedIndex, rescore_sealed: bool) -> Self {
        ShardRouter {
            index,
            rescore_sealed,
            dirty: RwLock::new(Arc::new(HashSet::new())),
            wal: None,
        }
    }

    /// Attaches one write-ahead log per shard (`wals[s]` persists shard
    /// `s`) and arms auto-checkpointing at `checkpoint_bytes` of log per
    /// shard. Called once at startup, **after** recovery has been
    /// replayed through [`ShardRouter::reset_shard_from_checkpoint`] and
    /// [`ShardRouter::replay_op`] — from here on every mutation goes
    /// through the logs.
    ///
    /// # Panics
    /// When `wals.len()` differs from the shard count.
    pub fn attach_wal(&mut self, wals: Vec<Wal>, checkpoint_bytes: u64) {
        assert_eq!(wals.len(), self.index.shards(), "one WAL per shard");
        self.wal = Some(DurableLog {
            shards: wals
                .into_iter()
                .map(|wal| WalShard {
                    wal,
                    gate: RwLock::new(()),
                })
                .collect(),
            checkpoint_bytes,
        });
    }

    /// Whether a WAL is attached (writes are durable before they ack).
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Total bytes currently in the per-shard logs (0 without a WAL) —
    /// the operator-visible gauge of how much replay a crash would cost.
    pub fn wal_log_bytes(&self) -> u64 {
        self.wal
            .as_ref()
            .map_or(0, |log| log.shards.iter().map(|s| s.wal.log_bytes()).sum())
    }

    /// The routed index (per-shard diagnostics, snapshots).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.index.shards()
    }

    /// Marks `id` dirty (never again rescored against the exact table),
    /// *before* its write publishes: any search that could observe the
    /// new vector must already see it dirty (a conservative-only race —
    /// a fresh upsert may briefly skip rescoring, never rescore against
    /// a stale row).
    fn mark_dirty(&self, id: u64) {
        let mut dirty = self.dirty.write().unwrap_or_else(|p| p.into_inner());
        // Re-upserts of an already-dirty id (the replace-heavy workload)
        // skip the copy-on-write entirely; only a first-time id pays the
        // set clone, and only while a concurrent search holds the Arc.
        if !dirty.contains(&id) {
            Arc::make_mut(&mut dirty).insert(id);
        }
    }

    /// Inserts or replaces `id` in its owning shard, marking the id
    /// dirty first (see the `mark_dirty` invariant above). Returns
    /// `true` when the id already existed.
    ///
    /// # Errors
    /// Only with a WAL attached: the record could not be made durable
    /// (the index was **not** touched — the failed write simply never
    /// happened), or a post-write auto-checkpoint failed (the write
    /// itself is durable; retrying it is idempotent).
    pub fn upsert(&self, id: u64, vector: Vec<f32>) -> io::Result<bool> {
        let Some(log) = &self.wal else {
            self.mark_dirty(id);
            return Ok(self.index.upsert(id, vector));
        };
        let s = self.index.shard_of(id);
        let shard = &log.shards[s];
        let existed = {
            let _gate = shard.gate.read().unwrap_or_else(|p| p.into_inner());
            shard.wal.append_durable(&WalOp::Upsert {
                id,
                vector: vector.clone(),
            })?;
            self.mark_dirty(id);
            self.index.upsert(id, vector)
        };
        self.maybe_checkpoint(s)?;
        Ok(existed)
    }

    /// Removes `id` from its owning shard; `true` when it was present.
    ///
    /// # Errors
    /// Same contract as [`ShardRouter::upsert`].
    pub fn remove(&self, id: u64) -> io::Result<bool> {
        let Some(log) = &self.wal else {
            return Ok(self.index.remove(id));
        };
        let s = self.index.shard_of(id);
        let shard = &log.shards[s];
        let existed = {
            let _gate = shard.gate.read().unwrap_or_else(|p| p.into_inner());
            shard.wal.append_durable(&WalOp::Remove { id })?;
            self.index.remove(id)
        };
        self.maybe_checkpoint(s)?;
        Ok(existed)
    }

    /// Compacts every shard; returns total live vectors sealed. With a
    /// WAL attached each shard is quiesced, its `Compact` record made
    /// durable, compacted, and checkpointed (snapshot + log truncate) —
    /// one shard at a time, so the others keep serving writes.
    ///
    /// # Errors
    /// Only with a WAL attached; a failed shard aborts the sweep (shards
    /// already processed stay compacted and checkpointed).
    pub fn compact(&self) -> io::Result<usize> {
        let Some(log) = &self.wal else {
            return Ok(self.index.compact());
        };
        let mut sealed = 0;
        for (s, shard) in log.shards.iter().enumerate() {
            let _gate = shard.gate.write().unwrap_or_else(|p| p.into_inner());
            shard.wal.append_durable(&WalOp::Compact)?;
            sealed += self.index.compact_shard(s);
            self.checkpoint_shard(s, shard)?;
        }
        Ok(sealed)
    }

    /// Checkpoints shard `s` if its log has outgrown the configured
    /// threshold. Takes the shard's gate exclusively (quiescing its
    /// writers for the snapshot) and re-checks under the gate, so racing
    /// writers collapse into one checkpoint instead of a stampede.
    fn maybe_checkpoint(&self, s: usize) -> io::Result<()> {
        let Some(log) = &self.wal else {
            return Ok(());
        };
        let shard = &log.shards[s];
        if shard.wal.log_bytes() < log.checkpoint_bytes {
            return Ok(());
        }
        let _gate = shard.gate.write().unwrap_or_else(|p| p.into_inner());
        if shard.wal.log_bytes() < log.checkpoint_bytes {
            return Ok(());
        }
        self.checkpoint_shard(s, shard)
    }

    /// Writes shard `s`'s full live state as a new checkpoint and
    /// truncates its log. Caller holds the shard's gate exclusively.
    fn checkpoint_shard(&self, s: usize, shard: &WalShard) -> io::Result<()> {
        let dirty = self.dirty.read().unwrap_or_else(|p| p.into_inner()).clone();
        let entries: Vec<CheckpointEntry> = self
            .index
            .shard(s)
            .snapshot()
            .live_entries()
            .into_iter()
            .map(|(id, vector)| CheckpointEntry {
                id,
                dirty: dirty.contains(&id),
                vector,
            })
            .collect();
        shard.wal.checkpoint(self.index.dim(), &entries)
    }

    /// Recovery step 1: resets shard `s` to a recovered checkpoint —
    /// clears whatever the shard was seeded with (a checkpoint is the
    /// *complete* live state, including seeded ids that survived) and
    /// re-inserts every entry, restoring each entry's dirty bit so
    /// wire-upserted ids stay excluded from exact-table rescoring across
    /// the restart. Called before [`ShardRouter::attach_wal`].
    pub fn reset_shard_from_checkpoint(&self, s: usize, entries: &[CheckpointEntry]) {
        self.index.shard(s).clear();
        for e in entries {
            if e.dirty {
                self.mark_dirty(e.id);
            }
            self.index.shard(s).upsert(e.id, e.vector.clone());
        }
    }

    /// Recovery step 2: replays one recovered log record into shard `s`
    /// (upserts mark the id dirty, exactly as the original wire write
    /// did). Called after [`ShardRouter::reset_shard_from_checkpoint`],
    /// before [`ShardRouter::attach_wal`].
    pub fn replay_op(&self, s: usize, op: &WalOp) {
        match op {
            WalOp::Upsert { id, vector } => {
                self.mark_dirty(*id);
                self.index.shard(s).upsert(*id, vector.clone());
            }
            WalOp::Remove { id } => {
                self.index.shard(s).remove(*id);
            }
            WalOp::Compact => {
                self.index.compact_shard(s);
            }
        }
    }

    /// A consistent-per-shard read view (see
    /// [`ShardedIndex::snapshot`]).
    pub fn snapshot(&self) -> ShardedSnapshot {
        self.index.snapshot()
    }

    /// Scatter-gather kNN across all shards. When rescoring is enabled
    /// and `exact_table` is present, sealed quantized hits whose ids
    /// still match the table (row position = id, never re-upserted) are
    /// rescored to exact distances — per shard, exactly as the
    /// unsharded path does.
    pub fn search(
        &self,
        exact_table: Option<&Tensor>,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Vec<(u64, f64)> {
        let snap = self.index.snapshot();
        if self.rescore_sealed {
            if let Some(table) = exact_table {
                // One pointer clone under the lock; the search itself
                // runs against the snapshot, never blocking upserts.
                let dirty = self.dirty.read().unwrap_or_else(|p| p.into_inner()).clone();
                let rescorer = TableRescorer {
                    table,
                    dirty: &dirty,
                };
                return snap.search_rescored(query, k, nprobe, Some(&rescorer));
            }
        }
        snap.search(query, k, nprobe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_index::{IndexOptions, Metric};
    use trajcl_tensor::Shape;

    fn router(nshards: usize) -> ShardRouter {
        ShardRouter::new(
            ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), nshards),
            true,
        )
    }

    #[test]
    fn routes_and_searches_across_shards() {
        let r = router(3);
        for id in 0..30u64 {
            assert!(!r.upsert(id, vec![id as f32, 0.0]).unwrap());
        }
        assert!(
            r.upsert(4, vec![4.0, 0.0]).unwrap(),
            "second upsert replaces"
        );
        let hits = r.search(None, &[10.2, 0.0], 3, usize::MAX);
        assert_eq!(
            hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![10, 11, 9]
        );
        assert!(r.remove(10).unwrap());
        assert!(!r.remove(10).unwrap());
        assert_eq!(r.compact().unwrap(), 29);
        assert_eq!(r.snapshot().len(), 29);
        assert!(!r.is_durable());
        assert_eq!(r.wal_log_bytes(), 0);
    }

    #[test]
    fn dirty_ids_are_never_rescored() {
        // A quantized sealed part plus a lying exact table: clean ids
        // must be rescored against the table, wire-upserted (dirty) ids
        // must keep their own (asymmetric, error-bounded) distances.
        let opts = IndexOptions {
            quantization: trajcl_index::Quantization::Sq8,
            ..IndexOptions::default()
        };
        let r = ShardRouter::new(ShardedIndex::with_options(2, Metric::L1, opts, 2), true);
        // Clean id 0 via a path that never marks dirty: seeded through
        // the index directly (as Server::new does from the engine table).
        r.index().upsert(0, vec![1.0, 0.0]);
        r.upsert(1, vec![2.0, 0.0]).unwrap(); // dirty: wire upsert
        r.compact().unwrap(); // both ids now sealed as SQ8 codes
        let table = Tensor::from_vec(vec![5.0, 0.0, 5.0, 0.0], Shape::d2(2, 2));
        let hits = r.search(Some(&table), &[0.0, 0.0], 2, usize::MAX);
        // Dirty id 1 keeps its quantized distance (≈2): ranked first.
        assert_eq!(hits[0].0, 1);
        assert!((hits[0].1 - 2.0).abs() < 0.1, "got {}", hits[0].1);
        // Clean id 0 is rescored against the table row: exactly 5.
        assert_eq!(hits[1], (0, 5.0));
    }

    /// Self-cleaning scratch directory for the durable-router tests.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("trajcl-router-wal-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open_wals(dir: &std::path::Path, n: usize) -> Vec<(Wal, trajcl_index::WalRecovery)> {
        (0..n)
            .map(|s| {
                Wal::open(
                    dir,
                    &format!("shard{s}"),
                    trajcl_index::Durability::Fsync,
                    Arc::new(trajcl_index::RealFs),
                )
                .expect("open wal")
            })
            .collect()
    }

    #[test]
    fn durable_router_recovers_writes_dirty_bits_and_checkpoints() {
        let tmp = TempDir::new("roundtrip");
        let nshards = 2;
        // First life: durable writes, then drop (simulated restart).
        {
            let mut r = router(nshards);
            let wals = open_wals(&tmp.0, nshards).into_iter().map(|(w, _)| w);
            r.attach_wal(wals.collect(), 1 << 20);
            assert!(r.is_durable());
            for id in 0..12u64 {
                r.upsert(id, vec![id as f32, 1.0]).unwrap();
            }
            assert!(r.remove(3).unwrap());
            assert_eq!(r.compact().unwrap(), 11);
            // Compact checkpointed every shard: logs are empty again.
            assert_eq!(r.wal_log_bytes(), 0);
            r.upsert(20, vec![20.0, 1.0]).unwrap(); // lives only in the log
            assert!(r.wal_log_bytes() > 0);
        }
        // Second life: recover from checkpoint + log tail.
        let r2 = router(nshards);
        let mut wals = Vec::new();
        for (s, (wal, recovery)) in open_wals(&tmp.0, nshards).into_iter().enumerate() {
            if let Some(ckpt) = &recovery.checkpoint {
                r2.reset_shard_from_checkpoint(s, &ckpt.entries);
            }
            for op in &recovery.ops {
                r2.replay_op(s, op);
            }
            wals.push(wal);
        }
        let mut r2 = r2;
        r2.attach_wal(wals, 1 << 20);
        let mut ids = r2.snapshot().live_ids();
        ids.sort_unstable();
        let want: Vec<u64> = (0..12).filter(|&id| id != 3).chain([20]).collect();
        assert_eq!(ids, want);
        // Recovered ids keep their dirty bit: with a lying exact table,
        // nothing is rescored (every id came in over the wire).
        let table = Tensor::from_vec(vec![99.0, 99.0], Shape::d2(1, 2));
        let hits = r2.search(Some(&table), &[5.0, 1.0], 1, usize::MAX);
        assert_eq!(hits[0], (5, 0.0));
        // A tiny threshold forces an auto-checkpoint on the next write.
        let log_before = r2.wal_log_bytes();
        assert!(log_before > 0);
        let r3 = {
            let mut r = r2;
            // Re-attach with a 1-byte threshold (drop + reopen the wals).
            drop(r.wal.take());
            let wals = open_wals(&tmp.0, nshards).into_iter().map(|(w, _)| w);
            r.attach_wal(wals.collect(), 1);
            r
        };
        r3.upsert(40, vec![40.0, 1.0]).unwrap();
        let s40 = r3.index().shard_of(40);
        // Shard s40's log was checkpointed and truncated past threshold.
        let log = std::fs::metadata(tmp.0.join(format!("shard{s40}.log")))
            .expect("log metadata")
            .len();
        assert_eq!(log, 0, "auto-checkpoint must truncate the shard log");
    }

    #[test]
    fn durable_upsert_fails_before_touching_the_index() {
        let tmp = TempDir::new("failfast");
        let mut r = router(1);
        // A crash injector that dies on the very first filesystem op:
        // the append fails, so the index must stay untouched.
        let fs = Arc::new(trajcl_index::CrashPointFs::unlimited());
        let (wal, _) = Wal::open(
            &tmp.0,
            "shard0",
            trajcl_index::Durability::Fsync,
            fs.clone(),
        )
        .expect("open wal");
        r.attach_wal(vec![wal], 1 << 20);
        r.upsert(1, vec![1.0, 0.0]).unwrap();
        let dead = Arc::new(trajcl_index::CrashPointFs::new(0, false));
        // Swap in a dead filesystem by reopening the WAL over it.
        drop(r.wal.take());
        // The injector may already kill the open itself — equally fine:
        // no write path ever existed.
        if let Ok((wal, _)) = Wal::open(&tmp.0, "shard0", trajcl_index::Durability::Fsync, dead) {
            r.attach_wal(vec![wal], 1 << 20);
            assert!(r.upsert(2, vec![2.0, 0.0]).is_err());
            assert!(r.remove(1).is_err());
            assert!(r.compact().is_err());
        }
        assert_eq!(r.index().len(), 1, "failed writes must not apply");
    }
}
