//! [`ShardRouter`]: the serving layer's view of the sharded index —
//! id-hash write routing, scatter-gather search, and sealed-hit exact
//! rescoring with dirty-id tracking.
//!
//! The router owns what used to be the server's index-side state: a
//! [`ShardedIndex`] (any shard count; 1 is the unsharded degenerate
//! case) plus the copy-on-write set of ids whose vectors were upserted
//! over the wire and therefore no longer match the engine's cached
//! embedding table. [`Server`](crate::Server) delegates every index
//! operation here; the batcher/cache half of serving stays in the
//! server. See `PROTOCOL.md` for how shard routing surfaces (spoiler:
//! it doesn't — clients address ids, never shards) and DESIGN.md §13
//! for the architecture.

use std::collections::HashSet;
use std::sync::{Arc, RwLock};

use trajcl_index::{ExactRescorer, ShardedIndex, ShardedSnapshot};
use trajcl_tensor::Tensor;

/// [`ExactRescorer`] over the engine's cached embedding table: ids are
/// table row positions (how the server seeds the index), valid only
/// while the id was never re-upserted (tracked by [`ShardRouter`]).
struct TableRescorer<'a> {
    table: &'a Tensor,
    dirty: &'a HashSet<u64>,
}

impl ExactRescorer for TableRescorer<'_> {
    fn exact_vector(&self, id: u64) -> Option<&[f32]> {
        ((id as usize) < self.table.shape().rows() && !self.dirty.contains(&id))
            .then(|| self.table.row(id as usize))
    }
}

/// Routes index reads and writes across the shards of a
/// [`ShardedIndex`] (see the module docs).
///
/// # Examples
///
/// ```
/// use trajcl_index::{IndexOptions, Metric, ShardedIndex};
/// use trajcl_serve::ShardRouter;
///
/// let index = ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), 4);
/// let router = ShardRouter::new(index, true);
/// for id in 0..16u64 {
///     router.upsert(id, vec![id as f32, 0.0]);
/// }
/// assert_eq!(router.shards(), 4);
///
/// // Scatter-gather kNN over all four shards (no exact table here, so
/// // no rescoring — distances are exact f32 anyway).
/// let hits = router.search(None, &[6.9, 0.0], 2, usize::MAX);
/// assert_eq!(hits[0].0, 7);
/// assert!(router.remove(7));
/// assert_eq!(router.compact(), 15);
/// ```
pub struct ShardRouter {
    index: ShardedIndex,
    /// Whether sealed quantized hits are rescored against the exact
    /// table handed to [`ShardRouter::search`]
    /// ([`ServeConfig::rescore_sealed`](crate::ServeConfig::rescore_sealed)).
    rescore_sealed: bool,
    /// Ids whose vectors may disagree with the exact table (everything
    /// ever upserted through the router). Sealed hits on these ids are
    /// never rescored — the table row would be stale. Copy-on-write
    /// behind an `Arc` so searches snapshot it with one momentary read
    /// lock instead of holding the lock across the scan. The set only
    /// grows (bounded by distinct upserted ids): pruning on `remove`
    /// would race a concurrent re-upsert of the same id, and a stale
    /// `true` is merely conservative (skips a rescore) while a stale
    /// `false` would serve wrong distances.
    dirty: RwLock<Arc<HashSet<u64>>>,
}

impl ShardRouter {
    /// Wraps a sharded index. `rescore_sealed` gates whether
    /// [`ShardRouter::search`] rescores sealed quantized hits against
    /// the exact table it is given.
    pub fn new(index: ShardedIndex, rescore_sealed: bool) -> Self {
        ShardRouter {
            index,
            rescore_sealed,
            dirty: RwLock::new(Arc::new(HashSet::new())),
        }
    }

    /// The routed index (per-shard diagnostics, snapshots).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.index.shards()
    }

    /// Inserts or replaces `id` in its owning shard, marking the id
    /// dirty *before* the write publishes: any search that could observe
    /// the new vector sealed must already see it dirty (a
    /// conservative-only race — a fresh upsert may briefly skip
    /// rescoring, never rescore against a stale row). Returns `true`
    /// when the id already existed.
    pub fn upsert(&self, id: u64, vector: Vec<f32>) -> bool {
        let mut dirty = self.dirty.write().unwrap_or_else(|p| p.into_inner());
        // Re-upserts of an already-dirty id (the replace-heavy workload)
        // skip the copy-on-write entirely; only a first-time id pays the
        // set clone, and only while a concurrent search holds the Arc.
        if !dirty.contains(&id) {
            Arc::make_mut(&mut dirty).insert(id);
        }
        drop(dirty);
        self.index.upsert(id, vector)
    }

    /// Removes `id` from its owning shard; `true` when it was present.
    pub fn remove(&self, id: u64) -> bool {
        self.index.remove(id)
    }

    /// Compacts every shard; returns total live vectors sealed.
    pub fn compact(&self) -> usize {
        self.index.compact()
    }

    /// A consistent-per-shard read view (see
    /// [`ShardedIndex::snapshot`]).
    pub fn snapshot(&self) -> ShardedSnapshot {
        self.index.snapshot()
    }

    /// Scatter-gather kNN across all shards. When rescoring is enabled
    /// and `exact_table` is present, sealed quantized hits whose ids
    /// still match the table (row position = id, never re-upserted) are
    /// rescored to exact distances — per shard, exactly as the
    /// unsharded path does.
    pub fn search(
        &self,
        exact_table: Option<&Tensor>,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Vec<(u64, f64)> {
        let snap = self.index.snapshot();
        if self.rescore_sealed {
            if let Some(table) = exact_table {
                // One pointer clone under the lock; the search itself
                // runs against the snapshot, never blocking upserts.
                let dirty = self.dirty.read().unwrap_or_else(|p| p.into_inner()).clone();
                let rescorer = TableRescorer {
                    table,
                    dirty: &dirty,
                };
                return snap.search_rescored(query, k, nprobe, Some(&rescorer));
            }
        }
        snap.search(query, k, nprobe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_index::{IndexOptions, Metric};
    use trajcl_tensor::Shape;

    fn router(nshards: usize) -> ShardRouter {
        ShardRouter::new(
            ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), nshards),
            true,
        )
    }

    #[test]
    fn routes_and_searches_across_shards() {
        let r = router(3);
        for id in 0..30u64 {
            assert!(!r.upsert(id, vec![id as f32, 0.0]));
        }
        assert!(r.upsert(4, vec![4.0, 0.0]), "second upsert replaces");
        let hits = r.search(None, &[10.2, 0.0], 3, usize::MAX);
        assert_eq!(
            hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![10, 11, 9]
        );
        assert!(r.remove(10));
        assert!(!r.remove(10));
        assert_eq!(r.compact(), 29);
        assert_eq!(r.snapshot().len(), 29);
    }

    #[test]
    fn dirty_ids_are_never_rescored() {
        // A quantized sealed part plus a lying exact table: clean ids
        // must be rescored against the table, wire-upserted (dirty) ids
        // must keep their own (asymmetric, error-bounded) distances.
        let opts = IndexOptions {
            quantization: trajcl_index::Quantization::Sq8,
            ..IndexOptions::default()
        };
        let r = ShardRouter::new(ShardedIndex::with_options(2, Metric::L1, opts, 2), true);
        // Clean id 0 via a path that never marks dirty: seeded through
        // the index directly (as Server::new does from the engine table).
        r.index().upsert(0, vec![1.0, 0.0]);
        r.upsert(1, vec![2.0, 0.0]); // dirty: wire upsert
        r.compact(); // both ids now sealed as SQ8 codes
        let table = Tensor::from_vec(vec![5.0, 0.0, 5.0, 0.0], Shape::d2(2, 2));
        let hits = r.search(Some(&table), &[0.0, 0.0], 2, usize::MAX);
        // Dirty id 1 keeps its quantized distance (≈2): ranked first.
        assert_eq!(hits[0].0, 1);
        assert!((hits[0].1 - 2.0).abs() < 0.1, "got {}", hits[0].1);
        // Clean id 0 is rescored against the table row: exactly 5.
        assert_eq!(hits[1], (0, 5.0));
    }
}
