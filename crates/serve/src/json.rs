//! A minimal JSON reader for the serve protocol (the build is offline, so
//! no serde): objects, arrays, numbers, strings, booleans, null.
//!
//! Writing stays hand-rolled `format!` strings, matching the CLI's
//! existing `--json` output style.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as f64).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order irrelevant to the protocol).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Deepest accepted container nesting. The parser recurses per level, so
/// without a limit a frame of a few hundred kilobytes of `[` overflows
/// the stack — an abort `catch_unwind` cannot contain. Protocol payloads
/// nest three levels deep; 128 leaves generous headroom.
pub const MAX_DEPTH: usize = 128;

/// Parses one complete JSON value (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogates are unsupported (the protocol is ASCII).
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unmodified.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                *pos += len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"op":"knn","traj":[[1.5,-2.0],[3,4]],"k":5}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("knn"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(5));
        let traj = v.get("traj").unwrap().as_arr().unwrap();
        assert_eq!(traj.len(), 2);
        assert_eq!(traj[0].as_arr().unwrap()[1].as_f64(), Some(-2.0));
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.25e2").unwrap(), Json::Num(-125.0));
        assert_eq!(
            parse(r#""a\"b\n""#).unwrap(),
            Json::Str("a\"b\n".to_string())
        );
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert!(matches!(parse("{}").unwrap(), Json::Obj(m) if m.is_empty()));
        let v = parse(r#"{"a":{"b":[1,2,{"c":null}]}}"#).unwrap();
        assert!(v.get("a").unwrap().get("b").is_some());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"x",
            "{\"a\" 1}",
            "01x",
            "1 2",
            "nul",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        // Fuzz regression: unbounded recursion turned ~100k open brackets
        // into a stack overflow (an abort, not a catchable panic).
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
        // Nesting at the protocol's actual depth still parses.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH - 1),
            "]".repeat(MAX_DEPTH - 1)
        );
        assert!(parse(&ok).is_ok());
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&over).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }
}
