//! # trajcl-serve
//!
//! A concurrent, micro-batching serving runtime over a
//! [`trajcl_engine::Engine`] — the layer that turns the library into a
//! server:
//!
//! * **dynamic micro-batcher** ([`batcher`]) — callers block on a bounded
//!   MPSC queue; worker threads drain up to `max_batch` trajectories (or
//!   wait at most `max_wait` for stragglers) and run ONE fused tape-free
//!   forward per batch through per-worker [`trajcl_tensor::InferCtx`]s
//!   checked out of a shared [`trajcl_tensor::CtxPool`], replacing the
//!   engine backends' single serving mutex;
//! * **sharded, snapshot-readable index** ([`router`], over
//!   [`trajcl_index::ShardedIndex`]) — vectors partition across N
//!   hash-on-id [`trajcl_index::MutableIndex`] shards, each with its own
//!   write lock, snapshot and independent compaction; `upsert`/`remove`
//!   land in per-shard write buffers, kNN scatter-gathers every shard and
//!   merges exactly, so readers never block on writers and writers on
//!   different shards never block each other;
//! * **LRU embedding cache** ([`cache`]) — keyed by trajectory content
//!   hash and consulted before the batcher, so hot queries skip the model
//!   entirely;
//! * **wire protocol** ([`proto`]) — length-prefixed JSON frames over any
//!   byte stream (normative spec: `PROTOCOL.md` at the repo root);
//! * **transport** ([`net`]) — a TCP / unix-socket listener and client
//!   for those frames, with connect/read/write deadlines on every socket
//!   and idle-session reaping; the `trajcl serve` CLI subcommand speaks
//!   either the listener or the degenerate stdin/stdout
//!   single-connection mode;
//! * **fleet front-end** ([`fleet`]) — a router process owning
//!   [`Client`] connections to N downstream shard servers: scatters
//!   `knn`/`upsert`/`remove` by the same hash-on-id placement, merges
//!   through the exact top-k path, and degrades gracefully (retries
//!   with backoff, per-shard health tracking, `"partial":true` answers)
//!   when shards die;
//! * **fault injection** ([`chaos`]) — a deterministic seeded
//!   frame-corrupting proxy (drop/delay/truncate/garble/kill) that the
//!   chaos test suite and `load_gen` use to prove the failure modes in
//!   DESIGN.md §14 actually hold;
//! * **durability** ([`server::WalConfig`], over
//!   [`trajcl_index::Wal`]) — an optional per-shard write-ahead log:
//!   every mutation is appended and group-fsync'd *before* it is
//!   applied or acknowledged, recovery replays last checkpoint + log
//!   tail, and the crash-point matrix in `crates/index/tests/`
//!   proves no acknowledged write is ever lost (DESIGN.md §15).
//!
//! ```
//! use std::sync::Arc;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
//! use trajcl_engine::Engine;
//! use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
//! use trajcl_serve::{ServeConfig, Server};
//! use trajcl_tensor::{Shape, Tensor};
//!
//! // A tiny engine over 8 synthetic trajectories.
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = TrajClConfig::test_default();
//! let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
//! let grid = Grid::new(region, 100.0);
//! let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
//! let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
//! let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
//! let db: Vec<Trajectory> = (0..8)
//!     .map(|i| (0..6).map(|t| Point::new(t as f64 * 90.0, i as f64 * 120.0)).collect())
//!     .collect();
//! let engine = Engine::builder().trajcl(model, feat).database(db.clone()).build().unwrap();
//!
//! // Wrap it in the serving runtime and query concurrently.
//! let server = Server::new(Arc::new(engine), ServeConfig::default()).unwrap();
//! let hits = server.knn(&db[2], 3).unwrap();
//! assert_eq!(hits[0].0, 2); // the query is its own nearest neighbour
//! server.upsert(100, &db[5]).unwrap();
//! server.remove(0).unwrap();
//! assert_eq!(server.compact().unwrap(), 8); // 8 live vectors re-sealed
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod chaos;
pub mod fleet;
pub mod json;
pub mod net;
pub mod proto;
pub mod router;
pub mod server;

pub use cache::{content_hash, LruCache};
pub use chaos::{ChaosPlan, ChaosProxy, Fault};
pub use fleet::{Fleet, FleetConfig, ShardHealth};
pub use net::{
    listen, listen_with, Client, ClientOptions, FrameHandler, NetServer, SessionOptions,
};
pub use router::ShardRouter;
pub use server::{ServeConfig, Server, ServerStats, WalConfig, WalRecoveryStats};
