//! Deterministic fault injection for the serve wire protocol.
//!
//! [`ChaosProxy`] sits between a protocol client and a server (or
//! between a fleet front-end and a shard), forwarding frames in both
//! directions and injecting faults according to a seeded [`ChaosPlan`]:
//!
//! * [`Fault::Drop`] — swallow the frame (the peer waits until its read
//!   deadline fires);
//! * [`Fault::Delay`] — forward after a fixed sleep (exercises deadline
//!   budgets without killing anything);
//! * [`Fault::Garble`] — corrupt one payload byte to `0xFF` (invalid
//!   UTF-8, so the receiver's frame reader rejects it deterministically
//!   and the connection dies the documented framing-error death);
//! * [`Fault::Truncate`] — send the header and half the payload, then
//!   sever the connection mid-frame;
//!
//! plus [`ChaosPlan::kill_after_frames`], which severs the connection
//! outright after N forwarded frames — the SIGKILL-equivalent for one
//! connection.
//!
//! Determinism is the design constraint: whether frame `i` of
//! connection `c` in direction `d` is faulted is a pure function of
//! `(seed, c, d, i)` ([`ChaosPlan::fault_for`]), so a failing chaos run
//! replays exactly from its seed. No wall clock, no global RNG.
//!
//! The proxy is test infrastructure — TCP only, one listener, no
//! backpressure games — but it lives in the library (not `#[cfg(test)]`)
//! so the chaos suite, doc examples and `load_gen` share one
//! implementation.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::read_frame;

/// One injected fault (see module docs for each variant's effect).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Swallow the frame.
    Drop,
    /// Forward the frame after [`ChaosPlan::delay`].
    Delay,
    /// Corrupt one payload byte to invalid UTF-8, then forward.
    Garble,
    /// Forward the header and half the payload, then sever.
    Truncate,
}

/// A seeded fault schedule: per-mille rates per fault kind, applied per
/// forwarded frame. Rates are checked in the order drop, garble,
/// truncate, delay against one roll in `0..1000`, so their sum must
/// stay ≤ 1000.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Seed of the per-frame fault stream.
    pub seed: u64,
    /// Frames dropped, per mille.
    pub drop_per_mille: u16,
    /// Frames garbled, per mille.
    pub garble_per_mille: u16,
    /// Frames truncated (connection severed), per mille.
    pub truncate_per_mille: u16,
    /// Frames delayed by [`ChaosPlan::delay`], per mille.
    pub delay_per_mille: u16,
    /// The [`Fault::Delay`] duration.
    pub delay: Duration,
    /// Sever the connection after this many forwarded frames (both
    /// directions counted together); `None` disables.
    pub kill_after_frames: Option<u64>,
}

impl ChaosPlan {
    /// A fault-free plan (the proxy degenerates to a frame relay) —
    /// the baseline every chaos test perturbs from.
    pub fn none(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            drop_per_mille: 0,
            garble_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            kill_after_frames: None,
        }
    }

    /// The fault (if any) for frame `frame` of connection `conn` in
    /// direction `dir` (0 = client→server, 1 = server→client) — a pure
    /// function, so tests can predict the schedule a seed produces.
    pub fn fault_for(&self, conn: u64, dir: u64, frame: u64) -> Option<Fault> {
        let stream = splitmix64(self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let roll = (splitmix64(stream ^ ((frame << 1) | dir)) % 1000) as u16;
        let mut bound = self.drop_per_mille;
        if roll < bound {
            return Some(Fault::Drop);
        }
        bound += self.garble_per_mille;
        if roll < bound {
            return Some(Fault::Garble);
        }
        bound += self.truncate_per_mille;
        if roll < bound {
            return Some(Fault::Truncate);
        }
        bound += self.delay_per_mille;
        if roll < bound {
            return Some(Fault::Delay);
        }
        None
    }
}

/// The splitmix64 mixer driving the fault stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running fault-injecting TCP proxy created by [`ChaosProxy::start`].
pub struct ChaosProxy {
    local_addr: String,
    upstream: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    frames: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Listens on a free localhost port and forwards every accepted
    /// connection to `upstream` under `plan`. Dial
    /// [`ChaosProxy::local_addr`] instead of the upstream address.
    ///
    /// # Errors
    /// Bind failures surface as [`std::io::Error`] (a bad upstream only
    /// surfaces per connection, as that connection dying).
    pub fn start(upstream: &str, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?.to_string();
        let upstream = Arc::new(Mutex::new(upstream.to_string()));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let frames = Arc::new(AtomicU64::new(0));
        let faults = Arc::new(AtomicU64::new(0));
        let accept = {
            let upstream = Arc::clone(&upstream);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let frames = Arc::clone(&frames);
            let faults = Arc::clone(&faults);
            std::thread::spawn(move || {
                let mut conn_id: u64 = 0;
                loop {
                    let client = match listener.accept() {
                        Ok((s, _)) => s,
                        Err(_) if stop.load(Ordering::Acquire) => return,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let target = upstream.lock().unwrap_or_else(|p| p.into_inner()).clone();
                    let Ok(server) = TcpStream::connect(&target) else {
                        // Upstream gone: the dialler sees its connection
                        // close immediately, exactly like a dead shard.
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    spawn_relay(
                        conn_id,
                        &client,
                        &server,
                        plan,
                        Arc::clone(&frames),
                        Arc::clone(&faults),
                    );
                    let mut reg = conns.lock().unwrap_or_else(|p| p.into_inner());
                    reg.push(client);
                    reg.push(server);
                    conn_id += 1;
                }
            })
        };
        Ok(ChaosProxy {
            local_addr,
            upstream,
            stop,
            accept: Some(accept),
            conns,
            frames,
            faults,
        })
    }

    /// Re-points NEW connections at a different upstream address — the
    /// "shard restarted on a fresh port behind a stable front address"
    /// event. Existing proxied connections keep their old upstream;
    /// [`ChaosProxy::sever_all`] cuts them over.
    pub fn set_upstream(&self, addr: &str) {
        *self.upstream.lock().unwrap_or_else(|p| p.into_inner()) = addr.to_string();
    }

    /// The proxy's own listening address (dial this).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Frames forwarded so far (both directions, faulted or not).
    pub fn frames_forwarded(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Severs every proxied connection without stopping the listener —
    /// the "shard restarted, all its connections reset" event, or a
    /// targeted connection-kill mid-test.
    pub fn sever_all(&self) {
        let mut reg = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for s in reg.drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stops accepting and severs everything.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(&self.local_addr); // wake accept()
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.sever_all();
    }
}

/// Spawns the two per-direction relay threads for one proxied
/// connection (threads exit when either side closes or a fault severs
/// the connection; no join handles kept — severing the registered
/// streams unblocks them).
fn spawn_relay(
    conn_id: u64,
    client: &TcpStream,
    server: &TcpStream,
    plan: ChaosPlan,
    frames: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
) {
    let conn_frames = Arc::new(AtomicU64::new(0));
    for dir in 0..2u64 {
        let (Ok(src), Ok(dst)) = (
            if dir == 0 { client } else { server }.try_clone(),
            if dir == 0 { server } else { client }.try_clone(),
        ) else {
            return;
        };
        let frames = Arc::clone(&frames);
        let faults = Arc::clone(&faults);
        let conn_frames = Arc::clone(&conn_frames);
        std::thread::spawn(move || {
            relay_frames(conn_id, dir, src, dst, plan, frames, faults, conn_frames);
        });
    }
}

/// One direction's frame loop: read a frame, consult the plan, forward
/// (possibly corrupted). Returns when the source closes, a fault
/// severs the connection, or the kill budget is spent.
#[allow(clippy::too_many_arguments)]
fn relay_frames(
    conn_id: u64,
    dir: u64,
    src: TcpStream,
    dst: TcpStream,
    plan: ChaosPlan,
    frames: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
    conn_frames: Arc<AtomicU64>,
) {
    let mut reader = BufReader::new(src);
    let mut writer = dst;
    let mut frame_idx: u64 = 0;
    // EOF, a severed socket, or a peer writing garbage all end the loop:
    // the close is relayed below.
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let total = conn_frames.fetch_add(1, Ordering::AcqRel);
        if plan.kill_after_frames.is_some_and(|n| total >= n) {
            faults.fetch_add(1, Ordering::Relaxed);
            break;
        }
        frames.fetch_add(1, Ordering::Relaxed);
        let fault = plan.fault_for(conn_id, dir, frame_idx);
        frame_idx += 1;
        if fault.is_some() {
            faults.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            Some(Fault::Drop) => continue,
            Some(Fault::Delay) => {
                std::thread::sleep(plan.delay);
                if write_raw(&mut writer, payload.as_bytes()).is_err() {
                    break;
                }
            }
            Some(Fault::Garble) => {
                // One byte of invalid UTF-8: the receiver's frame reader
                // must reject the payload and kill the connection.
                let mut bytes = payload.into_bytes();
                let pos = (splitmix64(plan.seed ^ frame_idx) % bytes.len().max(1) as u64) as usize;
                if let Some(b) = bytes.get_mut(pos) {
                    *b = 0xFF;
                }
                if write_raw(&mut writer, &bytes).is_err() {
                    break;
                }
            }
            Some(Fault::Truncate) => {
                // Promise the full length, deliver half, vanish.
                let bytes = payload.as_bytes();
                let _ = writeln!(writer, "{}", bytes.len());
                let _ = writer.write_all(&bytes[..bytes.len() / 2]);
                let _ = writer.flush();
                break;
            }
            None => {
                if write_raw(&mut writer, payload.as_bytes()).is_err() {
                    break;
                }
            }
        }
    }
    // Sever both halves so the peer direction's thread unblocks too.
    let _ = writer.shutdown(std::net::Shutdown::Both);
    let _ = reader.get_ref().shutdown(std::net::Shutdown::Both);
}

/// Writes one frame from raw bytes (unlike
/// [`crate::proto::write_frame`], the payload may be invalid UTF-8 —
/// garbling depends on it).
fn write_raw(writer: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    writeln!(writer, "{}", payload.len())?;
    writer.write_all(payload)?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_rate_shaped() {
        let plan = ChaosPlan {
            drop_per_mille: 100,
            garble_per_mille: 50,
            truncate_per_mille: 25,
            delay_per_mille: 125,
            ..ChaosPlan::none(42)
        };
        let first: Vec<_> = (0..4000).map(|f| plan.fault_for(3, 1, f)).collect();
        let second: Vec<_> = (0..4000).map(|f| plan.fault_for(3, 1, f)).collect();
        assert_eq!(first, second);
        let count = |want: Fault| first.iter().filter(|f| **f == Some(want)).count();
        // ~10%/5%/2.5%/12.5% of 4000, generous tolerance.
        assert!(
            (250..=550).contains(&count(Fault::Drop)),
            "{}",
            count(Fault::Drop)
        );
        assert!((100..=300).contains(&count(Fault::Garble)));
        assert!((40..=170).contains(&count(Fault::Truncate)));
        assert!((330..=670).contains(&count(Fault::Delay)));
        // Different connections and directions see different schedules.
        let other: Vec<_> = (0..4000).map(|f| plan.fault_for(4, 1, f)).collect();
        assert_ne!(first, other);
        let flipped: Vec<_> = (0..4000).map(|f| plan.fault_for(3, 0, f)).collect();
        assert_ne!(first, flipped);
    }

    #[test]
    fn fault_free_plan_injects_nothing() {
        let plan = ChaosPlan::none(7);
        assert!((0..1000).all(|f| plan.fault_for(0, 0, f).is_none()));
    }
}
