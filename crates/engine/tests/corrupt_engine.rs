//! Property tests for the `TCE1` engine decoder, focused on the
//! quantization tail (the trailing `tag | rescore | [pq geometry] |
//! scan | shards` section whose absence means "legacy file"): corrupted
//! or truncated tails must be rejected or decode to a consistent engine
//! — never panic. Deterministic sibling of the `trajcl audit` engine
//! fuzz target.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::{Engine, Quantization};
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_tensor::{Shape, Tensor};

/// Serialized SQ8- and PQ-indexed engines (built once: engine
/// construction embeds a database, which dominates the test's runtime).
fn corpus() -> &'static (Vec<u8>, Vec<u8>) {
    static CORPUS: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let build = |quant: Quantization| {
            let mut rng = StdRng::seed_from_u64(11);
            let cfg = TrajClConfig::test_default();
            let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0));
            let grid = Grid::new(region, 100.0);
            let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
            let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
            let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
            let trajs: Vec<Trajectory> = (0..40)
                .map(|i| {
                    (0..10)
                        .map(|j| Point::new(50.0 + j as f64 * 80.0, 20.0 + (i % 8) as f64 * 90.0))
                        .collect()
                })
                .collect();
            Engine::builder()
                .trajcl(model, feat)
                .database(trajs)
                .ivf_index(3)
                .quantization(quant)
                .build()
                .expect("build corpus engine")
                .to_bytes()
                .expect("serialize corpus engine")
        };
        (
            build(Quantization::Sq8),
            build(Quantization::Pq { m: 4, nbits: 4 }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random bytes over the whole tail region (SQ8 tail: tag + rescore +
    // scan + shards; PQ additionally m + nbits). Any tag/geometry/count
    // combination must be rejected or produce a consistent engine.
    #[test]
    fn corrupted_quantization_tail_never_panics(
        offset_back in 1usize..16,
        byte in 0u32..256,
        pq in 0u32..2,
    ) {
        let (sq8, pq_bytes) = corpus();
        let base = if pq == 1 { pq_bytes } else { sq8 };
        let mut bytes = base.clone();
        let len = bytes.len();
        bytes[len - offset_back.min(len)] = byte as u8;
        if let Ok(engine) = Engine::from_bytes(&bytes) {
            // An accepted tail must carry a sane rescore factor, a sane
            // shard count and a recognised quantization mode.
            prop_assert!(engine.rescore_factor() >= 1);
            prop_assert!((1..=trajcl_engine::MAX_SHARDS).contains(&engine.shards()));
            match engine.quantization() {
                Quantization::None | Quantization::Sq8 => {}
                Quantization::Pq { m, nbits } => {
                    prop_assert!(m >= 1 && (1..=8).contains(&nbits));
                }
            }
        }
    }

    // Truncating anywhere inside the tail (or further into the file)
    // must fail cleanly — except at the backward-compatibility
    // boundaries: the full file, the pre-durability file (durability
    // byte cut), the pre-sharding file (shards u32 also cut), the
    // pre-scan-mode file (scan byte also cut), and the legacy
    // pre-quantization prefix (whole tail cut).
    #[test]
    fn truncated_tail_is_legacy_or_rejected(cut_back in 0usize..28, pq in 0u32..2) {
        let (sq8, pq_bytes) = corpus();
        let base = if pq == 1 { pq_bytes } else { sq8 };
        // tag + rescore + [m + nbits for PQ] + scan byte + shards u32 +
        // durability byte.
        let tail_len = if pq == 1 { 16 } else { 11 };
        let legacy = [0, 1, 5, 6, tail_len];
        let bytes = &base[..base.len() - cut_back.min(base.len())];
        match Engine::from_bytes(bytes) {
            Ok(engine) => {
                prop_assert!(legacy.contains(&cut_back));
                prop_assert!(engine.rescore_factor() >= 1);
                prop_assert!(engine.shards() >= 1);
            }
            Err(_) => {
                prop_assert!(!legacy.contains(&cut_back));
            }
        }
    }

    // Garbage appended after the tail must be rejected: the tail is the
    // final field and the decoder checks for trailing bytes.
    #[test]
    fn trailing_garbage_is_rejected(extra in prop::collection::vec(0u32..256, 1..16)) {
        let (sq8, _) = corpus();
        let mut bytes = sq8.clone();
        bytes.extend(extra.into_iter().map(|b| b as u8));
        prop_assert!(Engine::from_bytes(&bytes).is_err());
    }
}
