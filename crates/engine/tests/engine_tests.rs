//! Integration tests for the unified engine: builder flows, kNN routing,
//! heuristic fallback, fine-tuning, and whole-engine persistence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_core::{
    EncoderVariant, Featurizer, FinetuneConfig, FinetuneScope, TrajClConfig, TrajClModel,
};
use trajcl_data::{Dataset, DatasetProfile};
use trajcl_engine::{
    Durability, Engine, EngineBuilder, EngineError, HeuristicBackend, Quantization,
    SimilarityBackend,
};
use trajcl_geo::{Grid, SpatialNorm, Trajectory};
use trajcl_measures::HeuristicMeasure;
use trajcl_tensor::{Shape, Tensor};

/// An untrained TrajCL backend over the dataset's region — weights are
/// random but deterministic, which is all routing/persistence tests need.
fn untrained_trajcl(dataset: &Dataset) -> (TrajClModel, Featurizer) {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = TrajClConfig::test_default();
    let cell_side = dataset.profile.cell_side();
    let grid = Grid::new(dataset.region, cell_side);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
    let feat = Featurizer::new(
        grid,
        table,
        SpatialNorm::new(dataset.region, cell_side),
        cfg.max_len,
    );
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    (model, feat)
}

fn dataset(n: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetProfile::porto(), n, seed)
}

#[test]
fn builder_requires_a_backend() {
    let err = EngineBuilder::new()
        .build()
        .err()
        .expect("no backend must fail");
    assert!(matches!(err, EngineError::InvalidInput(_)));
}

#[test]
fn boxed_dyn_backend_flows_through_builder() {
    // The acceptance criterion in one test: Box<dyn SimilarityBackend>
    // compiles and drives an Engine.
    let ds = dataset(20, 1);
    let backend: Box<dyn SimilarityBackend> =
        Box::new(HeuristicBackend::new(HeuristicMeasure::Dtw));
    let engine = Engine::builder()
        .backend(backend)
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    assert_eq!(engine.backend().name(), "DTW");
    assert_eq!(engine.backend().dim(), 0);
    let hits = engine.knn(&ds.trajectories[3], 4).unwrap();
    assert_eq!(
        hits[0].0, 3,
        "self-query returns itself under an exact measure"
    );
    assert_eq!(hits.len(), 4);
}

#[test]
fn heuristic_engine_matches_direct_measure_ranking() {
    let ds = dataset(25, 2);
    let engine = Engine::builder()
        .heuristic(HeuristicMeasure::Hausdorff)
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    let q = &ds.trajectories[0];
    let hits = engine.knn(q, 5).unwrap();
    let mut exact: Vec<(u32, f64)> = ds
        .trajectories
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, HeuristicMeasure::Hausdorff.distance(q, t)))
        .collect();
    exact.sort_by(|a, b| a.1.total_cmp(&b.1));
    exact.truncate(5);
    assert_eq!(hits, exact);
}

#[test]
fn indexed_and_brute_force_routes_agree_at_full_probe() {
    let ds = dataset(60, 3);
    let (model, feat) = untrained_trajcl(&ds);
    let brute = Engine::builder()
        .trajcl(model.clone(), feat.clone())
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    let indexed = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .ivf_index(8)
        .nprobe(8) // full probe -> exact
        .build()
        .unwrap();
    assert!(brute.index().is_none() && indexed.index().is_some());
    for qi in [0usize, 17, 42] {
        let a = brute.knn(&ds.trajectories[qi], 5).unwrap();
        let b = indexed.knn(&ds.trajectories[qi], 5).unwrap();
        assert_eq!(
            a.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            b.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            "routes disagree on query {qi}"
        );
    }
}

#[test]
fn quantized_index_route_matches_brute_force_and_persists() {
    // SQ8 storage with exact rescoring: at full probe the quantized route
    // must return the same ids AND the same (exact, rescored) distances
    // as the brute-force route, in a 4x-smaller index.
    let ds = dataset(60, 15);
    let (model, feat) = untrained_trajcl(&ds);
    let brute = Engine::builder()
        .trajcl(model.clone(), feat.clone())
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    let quantized = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .ivf_index(8)
        .nprobe(8) // full probe
        .quantization(Quantization::Sq8)
        .rescore_factor(4)
        .seed(3)
        .build()
        .unwrap();
    let index = quantized.index().expect("index built");
    assert_eq!(index.quantization(), Quantization::Sq8);
    assert_eq!(quantized.quantization(), Quantization::Sq8);
    for qi in [0usize, 17, 42] {
        let a = brute.knn(&ds.trajectories[qi], 5).unwrap();
        let b = quantized.knn(&ds.trajectories[qi], 5).unwrap();
        assert_eq!(a, b, "quantized route diverged on query {qi}");
    }

    // Persistence carries the IVF2 section and the quantization config.
    let restored = Engine::from_bytes(&quantized.to_bytes().unwrap()).unwrap();
    assert_eq!(restored.quantization(), Quantization::Sq8);
    assert_eq!(restored.rescore_factor(), 4);
    assert_eq!(
        restored.index().expect("index persisted").quantization(),
        Quantization::Sq8
    );
    for qi in [0usize, 17, 42] {
        assert_eq!(
            quantized.knn(&ds.trajectories[qi], 5).unwrap(),
            restored.knn(&ds.trajectories[qi], 5).unwrap(),
            "kNN diverged after reload on query {qi}"
        );
    }
}

#[test]
fn pq_index_route_matches_brute_force_and_persists() {
    // PQ storage with exact rescoring: at full probe with a generous
    // over-fetch the product-quantized route must return the same ids AND
    // the same (exact, rescored) distances as the brute-force route.
    let ds = dataset(60, 16);
    let (model, feat) = untrained_trajcl(&ds);
    let brute = Engine::builder()
        .trajcl(model.clone(), feat.clone())
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    let quant = Quantization::Pq { m: 4, nbits: 8 };
    let pq = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .ivf_index(8)
        .nprobe(8) // full probe
        .quantization(quant)
        .rescore_factor(16)
        .seed(3)
        .build()
        .unwrap();
    let index = pq.index().expect("index built");
    assert_eq!(index.quantization(), quant);
    assert_eq!(pq.quantization(), quant);
    for qi in [0usize, 17, 42] {
        let a = brute.knn(&ds.trajectories[qi], 5).unwrap();
        let b = pq.knn(&ds.trajectories[qi], 5).unwrap();
        assert_eq!(a, b, "pq route diverged on query {qi}");
    }

    // Persistence carries the IVF3 section and the PQ configuration tail.
    let restored = Engine::from_bytes(&pq.to_bytes().unwrap()).unwrap();
    assert_eq!(restored.quantization(), quant);
    assert_eq!(restored.rescore_factor(), 16);
    assert_eq!(
        restored.index().expect("index persisted").quantization(),
        quant
    );
    for qi in [0usize, 17, 42] {
        assert_eq!(
            pq.knn(&ds.trajectories[qi], 5).unwrap(),
            restored.knn(&ds.trajectories[qi], 5).unwrap(),
            "kNN diverged after reload on query {qi}"
        );
    }
}

#[test]
fn embed_all_chunking_is_invisible() {
    let ds = dataset(30, 4);
    let (model, feat) = untrained_trajcl(&ds);
    let big = Engine::builder()
        .trajcl(model.clone(), feat.clone())
        .batch_size(64)
        .build()
        .unwrap();
    let small = Engine::builder()
        .trajcl(model, feat)
        .batch_size(3)
        .build()
        .unwrap();
    let e1 = big.embed_all(&ds.trajectories).unwrap();
    let e2 = small.embed_all(&ds.trajectories).unwrap();
    assert_eq!(e1.shape(), Shape::d2(30, big.backend().dim()));
    assert!(
        e1.approx_eq(&e2, 1e-5),
        "batch size must not change embeddings"
    );
}

#[test]
fn empty_and_degenerate_batches_error_cleanly() {
    let ds = dataset(10, 5);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder().trajcl(model, feat).build().unwrap();
    assert!(matches!(
        engine.embed_all(&[]),
        Err(EngineError::EmptyBatch)
    ));
    let mut batch = ds.trajectories.clone();
    batch.insert(2, Trajectory::new(Vec::new()));
    assert!(matches!(
        engine.embed_all(&batch),
        Err(EngineError::EmptyTrajectory { index: 2 })
    ));
    assert!(matches!(
        engine.knn(&ds.trajectories[0], 3),
        Err(EngineError::NoDatabase)
    ));
    assert!(matches!(
        engine.knn(&Trajectory::new(Vec::new()), 3),
        Err(EngineError::EmptyTrajectory { index: 0 })
    ));
}

#[test]
fn knn_by_index_validates_and_excludes_self() {
    let ds = dataset(15, 6);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    assert!(matches!(
        engine.knn_by_index(99, 3),
        Err(EngineError::QueryOutOfRange { index: 99, len: 15 })
    ));
    let hits = engine.knn_by_index(4, 3).unwrap();
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|(id, _)| *id != 4), "self must be excluded");
}

#[test]
fn persistence_round_trip_is_bit_exact() {
    // The satellite acceptance test: save an Engine (model + featurizer +
    // IVF index), reload it, and require identical kNN results and
    // bit-for-bit embeddings.
    let ds = dataset(50, 8);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .ivf_index(6)
        .nprobe(3)
        .seed(11)
        .build()
        .unwrap();
    let bytes = engine.to_bytes().unwrap();
    let restored = Engine::from_bytes(&bytes).unwrap();

    // Embeddings: bit-for-bit (tolerance 0.0).
    let before = engine.embed_all(&ds.trajectories).unwrap();
    let after = restored.embed_all(&ds.trajectories).unwrap();
    assert!(
        before.approx_eq(&after, 0.0),
        "embeddings changed across persistence"
    );
    let cached = restored.embeddings().expect("embedding table persisted");
    assert_eq!(
        cached.data(),
        before.data(),
        "cached table differs from recompute"
    );

    // kNN: identical ids AND distances through the persisted index.
    assert!(restored.index().is_some(), "index must survive persistence");
    for qi in [0usize, 13, 37] {
        let a = engine.knn(&ds.trajectories[qi], 5).unwrap();
        let b = restored.knn(&ds.trajectories[qi], 5).unwrap();
        assert_eq!(a, b, "kNN diverged after reload on query {qi}");
    }
}

#[test]
fn shard_count_round_trips_and_legacy_files_default_to_one() {
    let ds = dataset(12, 9);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories)
        .shards(4)
        .build()
        .unwrap();
    assert_eq!(engine.shards(), 4);
    let bytes = engine.to_bytes().unwrap();
    assert_eq!(Engine::from_bytes(&bytes).unwrap().shards(), 4);

    // A pre-durability file ends at the shard count: loads ephemeral.
    let legacy = &bytes[..bytes.len() - 1];
    let restored = Engine::from_bytes(legacy).unwrap();
    assert_eq!(restored.shards(), 4);
    assert_eq!(restored.durability(), Durability::Ephemeral);

    // A pre-sharding file ends at the scan byte: loads with one shard.
    let legacy = &bytes[..bytes.len() - 5];
    assert_eq!(Engine::from_bytes(legacy).unwrap().shards(), 1);

    // Zero or absurd shard counts in the tail are corruption.
    for bad in [0u32, (trajcl_engine::MAX_SHARDS + 1) as u32] {
        let mut bytes = bytes.clone();
        let len = bytes.len();
        bytes[len - 5..len - 1].copy_from_slice(&bad.to_le_bytes());
        assert!(Engine::from_bytes(&bytes).is_err(), "shards={bad} accepted");
    }
}

#[test]
fn durability_round_trips_and_bad_tail_bytes_are_corruption() {
    let ds = dataset(12, 9);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories)
        .durability(Durability::Fsync)
        .build()
        .unwrap();
    assert_eq!(engine.durability(), Durability::Fsync);
    let bytes = engine.to_bytes().unwrap();
    assert_eq!(
        Engine::from_bytes(&bytes).unwrap().durability(),
        Durability::Fsync
    );

    // An unknown durability tag is corruption.
    let mut bad = bytes.clone();
    let len = bad.len();
    bad[len - 1] = 9;
    assert!(Engine::from_bytes(&bad).is_err());

    // Trailing garbage after the durability byte is corruption.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(Engine::from_bytes(&extended).is_err());
}

#[test]
fn persistence_rejects_garbage_and_heuristic_backends() {
    assert!(matches!(
        Engine::from_bytes(b"not an engine"),
        Err(EngineError::CorruptEngineFile(_))
    ));
    let engine = Engine::builder()
        .heuristic(HeuristicMeasure::Edwp)
        .build()
        .unwrap();
    assert!(matches!(
        engine.to_bytes(),
        Err(EngineError::Unsupported(_))
    ));

    let ds = dataset(12, 9);
    let (model, feat) = untrained_trajcl(&ds);
    let trajcl = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories)
        .build()
        .unwrap();
    let mut bytes = trajcl.to_bytes().unwrap();
    bytes.truncate(bytes.len() / 3);
    assert!(Engine::from_bytes(&bytes).is_err());

    // Trailing garbage after the (final) quantization tail is corruption.
    let mut bytes = trajcl.to_bytes().unwrap();
    bytes.push(0);
    assert!(Engine::from_bytes(&bytes).is_err());
}

#[test]
fn approximate_measure_produces_a_serving_engine() {
    let ds = dataset(24, 10);
    let (model, feat) = untrained_trajcl(&ds);
    let engine = Engine::builder()
        .trajcl(model, feat)
        .database(ds.trajectories.clone())
        .build()
        .unwrap();
    let cfg = FinetuneConfig {
        scope: FinetuneScope::HeadOnly,
        pairs_per_epoch: 16,
        batch_pairs: 8,
        epochs: 1,
        lr: 1e-3,
    };
    let mut rng = StdRng::seed_from_u64(12);
    let approx = engine
        .approximate_measure(
            HeuristicMeasure::Hausdorff,
            &ds.trajectories[..16],
            &cfg,
            &mut rng,
        )
        .unwrap();
    assert!(approx.backend().name().contains("Hausdorff"));
    assert_eq!(approx.database().len(), engine.database().len());
    let hits = approx.knn(&ds.trajectories[0], 3).unwrap();
    assert_eq!(hits.len(), 3);

    // Heuristic backends cannot be fine-tuned.
    let heuristic = Engine::builder()
        .heuristic(HeuristicMeasure::Dtw)
        .build()
        .unwrap();
    assert!(matches!(
        heuristic.approximate_measure(HeuristicMeasure::Dtw, &ds.trajectories, &cfg, &mut rng),
        Err(EngineError::Unsupported(_))
    ));
}

#[test]
fn trained_engine_end_to_end_via_builder() {
    // The full builder flow: dataset -> featurizer -> trained backend ->
    // IVF index, then self-queries hit themselves.
    let ds = dataset(40, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let mut cfg = TrajClConfig::test_default();
    cfg.max_epochs = 1;
    let engine = Engine::builder()
        .train_trajcl(&ds, &cfg, &mut rng)
        .unwrap()
        .database(ds.trajectories.clone())
        .ivf_index(5)
        .nprobe(5)
        .build()
        .unwrap();
    assert!(engine.train_report().is_some());
    assert!(engine.train_report().unwrap().epochs_run >= 1);
    let hits = engine.knn(&ds.trajectories[7], 1).unwrap();
    assert_eq!(hits[0].0, 7, "a trajectory's nearest neighbour is itself");
}
