//! The engine-wide error type.
//!
//! Hand-rolled in `thiserror` style (the build is offline): one enum with
//! `Display`, `std::error::Error` and `From` conversions from every layer
//! below, so `?` propagates from featurisation up through the CLI without
//! stringly-typed plumbing.

use trajcl_core::PersistError;
use trajcl_data::io::ParseError;
use trajcl_geo::FeaturizeError;

/// Everything that can go wrong inside a [`crate::Engine`] or the CLI
/// driving it.
#[derive(Debug)]
pub enum EngineError {
    /// A batch operation received no trajectories.
    EmptyBatch,
    /// The trajectory at `index` in a batch has no points.
    EmptyTrajectory {
        /// Position within the offending batch.
        index: usize,
    },
    /// An embedding operation was requested from a backend without an
    /// embedding space (a heuristic measure).
    NoEmbedding {
        /// Backend name.
        backend: String,
    },
    /// A query referenced a database the engine does not have.
    NoDatabase,
    /// A query index fell outside the database.
    QueryOutOfRange {
        /// Requested index.
        index: usize,
        /// Database size.
        len: usize,
    },
    /// An operation needs more trajectories than were supplied.
    TooFewTrajectories {
        /// Minimum required.
        needed: usize,
        /// Actually supplied.
        got: usize,
    },
    /// The requested operation is not supported by the active backend
    /// (e.g. persisting a heuristic backend).
    Unsupported(String),
    /// Malformed user input (CLI options, config values).
    InvalidInput(String),
    /// Model/engine (de)serialisation failure.
    Persist(PersistError),
    /// An engine file or index section failed to decode.
    CorruptEngineFile(&'static str),
    /// A trajectory text file failed to parse.
    Parse(ParseError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyBatch => write!(f, "cannot operate on an empty batch"),
            EngineError::EmptyTrajectory { index } => {
                write!(f, "trajectory {index} in the batch holds no points")
            }
            EngineError::NoEmbedding { backend } => {
                write!(
                    f,
                    "backend {backend:?} has no embedding space (heuristic measure)"
                )
            }
            EngineError::NoDatabase => write!(f, "engine has no database to query"),
            EngineError::QueryOutOfRange { index, len } => {
                write!(f, "query index {index} out of range ({len} trajectories)")
            }
            EngineError::TooFewTrajectories { needed, got } => {
                write!(f, "need at least {needed} trajectories, got {got}")
            }
            EngineError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            EngineError::InvalidInput(msg) => write!(f, "{msg}"),
            EngineError::Persist(e) => write!(f, "persistence: {e}"),
            EngineError::CorruptEngineFile(section) => {
                write!(f, "engine file corrupt ({section})")
            }
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Persist(e) => Some(e),
            EngineError::Parse(e) => Some(e),
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FeaturizeError> for EngineError {
    fn from(e: FeaturizeError) -> Self {
        match e {
            FeaturizeError::EmptyBatch => EngineError::EmptyBatch,
            FeaturizeError::EmptyTrajectory { index } => EngineError::EmptyTrajectory { index },
        }
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Persist(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn featurize_errors_map_to_engine_variants() {
        assert!(matches!(
            EngineError::from(FeaturizeError::EmptyBatch),
            EngineError::EmptyBatch
        ));
        assert!(matches!(
            EngineError::from(FeaturizeError::EmptyTrajectory { index: 4 }),
            EngineError::EmptyTrajectory { index: 4 }
        ));
    }

    #[test]
    fn displays_are_informative() {
        let e = EngineError::QueryOutOfRange { index: 9, len: 5 };
        assert!(e.to_string().contains('9') && e.to_string().contains('5'));
        assert!(EngineError::NoEmbedding {
            backend: "Hausdorff".into()
        }
        .to_string()
        .contains("Hausdorff"));
    }

    #[test]
    fn io_errors_keep_a_source() {
        use std::error::Error as _;
        let e = EngineError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
