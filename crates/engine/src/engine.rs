//! [`Engine`] + [`EngineBuilder`]: one front door for training, embedding,
//! kNN serving, heuristic approximation and persistence.
//!
//! The engine owns a boxed [`SimilarityBackend`], an optional trajectory
//! database with its cached embedding table, and an optional IVF index.
//! Queries route automatically: indexed search when an index exists, brute
//! force over the cached table otherwise, and an exact database scan for
//! heuristic (no-embedding) backends.

use crate::backend::{FinetunedBackend, HeuristicBackend, SimilarityBackend, TrajClBackend};
use crate::error::EngineError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajcl_core::{
    build_featurizer, finetune, load_model, save_model, train, EncoderVariant, FinetuneConfig,
    MocoState, TrainReport, TrajClConfig,
};
use trajcl_data::Dataset;
use trajcl_geo::{validate_batch, Trajectory};
use trajcl_index::{
    atomic_write, brute_force_batch_knn, Durability, IvfIndex, Metric, Quantization, RealFs,
    ScanMode, DEFAULT_RESCORE_FACTOR,
};
use trajcl_measures::HeuristicMeasure;
use trajcl_tensor::{InferCtx, Shape, Tensor};

const ENGINE_MAGIC: &[u8; 4] = b"TCE1";

/// Default inference mini-batch size for [`Engine::embed_all`].
pub const DEFAULT_BATCH: usize = 64;

/// Upper bound on the serving shard count carried in the engine file —
/// a sanity cap on the TCE1 tail, far above any sensible deployment.
pub const MAX_SHARDS: usize = 4096;

/// A similarity-serving engine: backend + database + optional IVF index.
pub struct Engine {
    backend: Box<dyn SimilarityBackend>,
    database: Vec<Trajectory>,
    embeddings: Option<Tensor>,
    index: Option<IvfIndex>,
    nlist: Option<usize>,
    nprobe: usize,
    quantization: Quantization,
    rescore_factor: usize,
    scan: ScanMode,
    shards: usize,
    durability: Durability,
    batch_size: usize,
    seed: u64,
    train_report: Option<TrainReport>,
}

impl Engine {
    /// Starts a builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The active backend.
    pub fn backend(&self) -> &dyn SimilarityBackend {
        self.backend.as_ref()
    }

    /// The served trajectory database (empty for engines reloaded from
    /// bytes, which carry embeddings but not geometry).
    pub fn database(&self) -> &[Trajectory] {
        &self.database
    }

    /// Cached database embeddings, when the backend embeds.
    pub fn embeddings(&self) -> Option<&Tensor> {
        self.embeddings.as_ref()
    }

    /// The IVF index, when one was built.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Training report from [`EngineBuilder::train_trajcl`], when the
    /// engine's model was trained by the builder.
    pub fn train_report(&self) -> Option<&TrainReport> {
        self.train_report.as_ref()
    }

    /// Number of IVF cells requested at build time (`None` = brute force).
    pub fn nlist(&self) -> Option<usize> {
        self.nlist
    }

    /// Number of IVF cells probed per indexed query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Storage quantization applied when building the IVF index.
    pub fn quantization(&self) -> Quantization {
        self.quantization
    }

    /// Over-fetch multiplier for quantized (SQ8/PQ) rescoring (indexed
    /// queries re-rank the top `rescore_factor · k` quantized candidates
    /// against the exact cached embedding table).
    pub fn rescore_factor(&self) -> usize {
        self.rescore_factor
    }

    /// Scan kernel for quantized index scans ([`ScanMode::Symmetric`]
    /// quantizes the query too and scans in integer arithmetic).
    pub fn scan_mode(&self) -> ScanMode {
        self.scan
    }

    /// Serving shard count: how many hash-on-id index shards
    /// `trajcl-serve` partitions this engine's vectors into (1 = the
    /// unsharded degenerate case). Carried in the TCE1 tail so a
    /// reloaded engine serves with the shard layout it was saved with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Write durability expectation for serving this engine (default
    /// [`Durability::Ephemeral`]): when not ephemeral, `trajcl serve
    /// --wal DIR` pairs each index shard with a write-ahead log and only
    /// acknowledges a write once its record is durable under this
    /// policy. Carried in the TCE1 tail.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Inference mini-batch size used by [`Engine::embed_all`].
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Seed used for index construction (k-means initialisation).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Embeds trajectories in chunks of the configured batch size,
    /// returning `(N, dim)`.
    pub fn embed_all(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError> {
        self.embed_chunks(trajs, |chunk| self.backend.embed_batch(chunk))
    }

    /// Like [`Engine::embed_all`] but running every forward through a
    /// caller-owned [`InferCtx`] (the serving runtime's per-worker
    /// contexts) instead of the backend's internal one.
    pub fn embed_all_with(
        &self,
        ctx: &mut InferCtx,
        trajs: &[Trajectory],
    ) -> Result<Tensor, EngineError> {
        self.embed_chunks(trajs, |chunk| self.backend.embed_batch_with(ctx, chunk))
    }

    /// The shared validate → chunk → scatter loop behind both embed paths.
    fn embed_chunks(
        &self,
        trajs: &[Trajectory],
        mut embed: impl FnMut(&[Trajectory]) -> Result<Tensor, EngineError>,
    ) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        if !self.backend.supports_embedding() {
            return Err(EngineError::NoEmbedding {
                backend: self.backend.name().to_string(),
            });
        }
        let d = self.backend.dim();
        let mut out = Tensor::zeros(Shape::d2(trajs.len(), d));
        let mut row = 0usize;
        for chunk in trajs.chunks(self.batch_size.max(1)) {
            let e = embed(chunk)?;
            out.data_mut()[row * d..(row + chunk.len()) * d].copy_from_slice(e.data());
            row += chunk.len();
        }
        Ok(out)
    }

    /// Distance between two trajectories under the active backend.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        self.backend.distance(a, b)
    }

    /// k nearest database entries to `query`, `(id, distance)` ascending.
    ///
    /// Routing: IVF index (probing the configured `nprobe` lists) when one
    /// was built, brute force over the cached embedding table otherwise,
    /// exact measure scan for heuristic backends. A single-query wrapper
    /// over [`Engine::knn_batch`].
    pub fn knn(&self, query: &Trajectory, k: usize) -> Result<Vec<(u32, f64)>, EngineError> {
        let mut hits = self.knn_batch(std::slice::from_ref(query), k)?;
        Ok(hits.pop().expect("one result row per query"))
    }

    /// k nearest database entries for a *batch* of queries, one `(id,
    /// distance)` row per query.
    ///
    /// All queries share a single fused embedding forward (chunked at the
    /// engine batch size) before fanning out to the index or brute-force
    /// scan — the entry point the serving layer's micro-batcher drives, and
    /// what keeps N concurrent `knn` callers from paying N separate
    /// forwards.
    pub fn knn_batch(
        &self,
        queries: &[Trajectory],
        k: usize,
    ) -> Result<Vec<Vec<(u32, f64)>>, EngineError> {
        validate_batch(queries)?;
        if !self.backend.supports_embedding() {
            // Heuristic route: exact scan over database geometry.
            if self.database.is_empty() {
                return Err(EngineError::NoDatabase);
            }
            let mut out = Vec::with_capacity(queries.len());
            for query in queries {
                let mut hits: Vec<(u32, f64)> = Vec::with_capacity(self.database.len());
                for (i, t) in self.database.iter().enumerate() {
                    hits.push((i as u32, self.backend.distance(query, t)?));
                }
                hits.sort_by(|a, b| a.1.total_cmp(&b.1));
                hits.truncate(k);
                out.push(hits);
            }
            return Ok(out);
        }
        let q = self.embed_all(queries)?;
        if let Some(index) = &self.index {
            // Quantized indexes rescore their top rescore_factor·k SQ8
            // candidates against the engine's exact embedding table, so
            // served distances stay exact f32.
            return Ok(index.batch_search_rescored(&q, k, self.nprobe, self.embeddings.as_ref()));
        }
        match &self.embeddings {
            Some(emb) => Ok(brute_force_batch_knn(emb, &q, k, Metric::L1)),
            None => Err(EngineError::NoDatabase),
        }
    }

    /// kNN by database index (the CLI's `query` command).
    pub fn knn_by_index(&self, qi: usize, k: usize) -> Result<Vec<(u32, f64)>, EngineError> {
        if self.database.is_empty() {
            return Err(EngineError::NoDatabase);
        }
        if qi >= self.database.len() {
            return Err(EngineError::QueryOutOfRange {
                index: qi,
                len: self.database.len(),
            });
        }
        // Exclude the query itself from its own result list.
        let hits = self.knn(&self.database[qi], k + 1)?;
        Ok(hits
            .into_iter()
            .filter(|(id, _)| *id as usize != qi)
            .take(k)
            .collect())
    }

    /// Attaches (or replaces) the served database, re-embedding it and
    /// rebuilding the IVF index when one is configured. This is how a
    /// persisted engine (which carries no geometry) resumes serving.
    pub fn with_database(mut self, trajs: Vec<Trajectory>) -> Result<Engine, EngineError> {
        self.database = trajs;
        self.embeddings = None;
        self.index = None;
        if self.backend.supports_embedding() && !self.database.is_empty() {
            let emb = self.embed_all(&self.database)?;
            if let Some(nlist) = self.nlist {
                let mut rng = StdRng::seed_from_u64(self.seed);
                self.index = Some(IvfIndex::build_with_scan(
                    &emb,
                    nlist,
                    Metric::L1,
                    self.quantization,
                    self.rescore_factor,
                    self.scan,
                    &mut rng,
                ));
            }
            self.embeddings = Some(emb);
        }
        Ok(self)
    }

    /// Requests an IVF index with `nlist` cells; takes effect at the next
    /// [`Engine::with_database`] call.
    pub fn with_ivf_index(mut self, nlist: usize) -> Self {
        self.nlist = Some(nlist);
        self
    }

    /// Requests quantized (SQ8/PQ) or exact index storage; takes effect
    /// at the next [`Engine::with_database`] call.
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// Sets the SQ8 rescoring over-fetch multiplier; takes effect at the
    /// next [`Engine::with_database`] call.
    pub fn with_rescore_factor(mut self, rescore_factor: usize) -> Self {
        self.rescore_factor = rescore_factor.max(1);
        self
    }

    /// Sets the quantized-scan kernel; takes effect at the next
    /// [`Engine::with_database`] call.
    pub fn with_scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// Sets the serving shard count (clamped to `1..=`[`MAX_SHARDS`]);
    /// persisted in the TCE1 tail and picked up by `trajcl-serve`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, MAX_SHARDS);
        self
    }

    /// Drops the IVF configuration (and any built index): subsequent
    /// [`Engine::with_database`] calls cache embeddings but skip k-means.
    /// The serving layer uses this so index training happens once, in its
    /// own [`trajcl_index::MutableIndex`], not twice.
    pub fn without_ivf_index(mut self) -> Self {
        self.nlist = None;
        self.index = None;
        self
    }

    /// Fine-tunes the engine's TrajCL model into a fast estimator of
    /// `measure` (wrapping [`trajcl_core::finetune()`]) and returns a new
    /// engine serving the same database through the refined embeddings.
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] unless the active backend is TrajCL;
    /// [`EngineError::TooFewTrajectories`] when `pool` cannot form pairs.
    pub fn approximate_measure(
        &self,
        measure: HeuristicMeasure,
        pool: &[Trajectory],
        cfg: &FinetuneConfig,
        rng: &mut impl Rng,
    ) -> Result<Engine, EngineError> {
        let (model, featurizer) = self.backend.as_trajcl().ok_or_else(|| {
            EngineError::Unsupported(format!(
                "approximate_measure needs a TrajCL backend, got {:?}",
                self.backend.name()
            ))
        })?;
        if pool.len() < 2 {
            return Err(EngineError::TooFewTrajectories {
                needed: 2,
                got: pool.len(),
            });
        }
        validate_batch(pool)?;
        let estimator = finetune(model, featurizer, pool, measure, cfg, rng);
        let backend =
            FinetunedBackend::new(estimator, featurizer.clone(), measure.name(), model.cfg.dim);
        EngineBuilder::new()
            .backend(Box::new(backend))
            .database(self.database.clone())
            .maybe_ivf_index(self.nlist)
            .nprobe(self.nprobe)
            .quantization(self.quantization)
            .rescore_factor(self.rescore_factor)
            .shards(self.shards)
            .durability(self.durability)
            .batch_size(self.batch_size)
            .seed(self.seed)
            .build()
    }

    /// Serialises the whole engine: model + featurizer (via
    /// [`trajcl_core::persist`]), cached embeddings, IVF index and serving
    /// configuration. Database geometry is not persisted — a reloaded
    /// engine answers kNN by id from its index/embeddings.
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] unless the active backend is TrajCL.
    pub fn to_bytes(&self) -> Result<Vec<u8>, EngineError> {
        let (model, featurizer) = self.backend.as_trajcl().ok_or_else(|| {
            EngineError::Unsupported(format!(
                "persistence needs a TrajCL backend, got {:?}",
                self.backend.name()
            ))
        })?;
        let mut out = Vec::new();
        out.extend_from_slice(ENGINE_MAGIC);
        let model_bytes = save_model(model, featurizer, featurizer.grid().cell_side());
        out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&model_bytes);
        out.extend_from_slice(&(self.nprobe as u32).to_le_bytes());
        out.extend_from_slice(&(self.batch_size as u32).to_le_bytes());
        out.extend_from_slice(&(self.nlist.unwrap_or(0) as u32).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        match &self.embeddings {
            Some(emb) => {
                out.push(1);
                out.extend_from_slice(&(emb.shape().rows() as u32).to_le_bytes());
                out.extend_from_slice(&(emb.shape().last() as u32).to_le_bytes());
                for &v in emb.data() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            None => out.push(0),
        }
        match &self.index {
            Some(index) => {
                let bytes = index.to_bytes();
                out.push(1);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
            None => out.push(0),
        }
        // Quantization tail (appended so pre-SQ8 files — which simply end
        // here — still load with default settings). The PQ tag carries
        // its geometry after the rescore factor; pre-PQ readers never see
        // it because they reject the unknown tag.
        match self.quantization {
            Quantization::None => {
                out.push(0u8);
                out.extend_from_slice(&(self.rescore_factor as u32).to_le_bytes());
            }
            Quantization::Sq8 => {
                out.push(1u8);
                out.extend_from_slice(&(self.rescore_factor as u32).to_le_bytes());
            }
            Quantization::Pq { m, nbits } => {
                out.push(2u8);
                out.extend_from_slice(&(self.rescore_factor as u32).to_le_bytes());
                out.extend_from_slice(&(m as u32).to_le_bytes());
                out.push(nbits);
            }
        }
        // Scan-mode tail (appended after the quantization tail the same
        // way: pre-symmetric files end before it and default to the
        // asymmetric kernel).
        out.push(match self.scan {
            ScanMode::Asymmetric => 0u8,
            ScanMode::Symmetric => 1u8,
        });
        // Shard-count tail (same append-only convention: pre-sharding
        // files end at the scan byte and default to one shard).
        out.extend_from_slice(&(self.shards as u32).to_le_bytes());
        // Durability tail (same convention: pre-WAL files end at the
        // shard count and default to ephemeral).
        out.push(match self.durability {
            Durability::Ephemeral => 0u8,
            Durability::Buffered => 1u8,
            Durability::Fsync => 2u8,
        });
        Ok(out)
    }

    /// Writes [`Engine::to_bytes`] to `path` crash-safely: temp file,
    /// fsync, atomic rename. A crash mid-save leaves the previous
    /// snapshot intact — never a torn TCE1 file.
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] for non-TrajCL backends (as
    /// [`Engine::to_bytes`]); [`EngineError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), EngineError> {
        let bytes = self.to_bytes()?;
        atomic_write(&RealFs, path, &bytes).map_err(EngineError::Io)
    }

    /// Restores an engine from [`Engine::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Engine, EngineError> {
        let mut r = bytes;
        let take = |r: &mut &[u8], n: usize| -> Result<Vec<u8>, EngineError> {
            if r.len() < n {
                return Err(EngineError::CorruptEngineFile("truncated"));
            }
            let (head, rest) = r.split_at(n);
            *r = rest;
            Ok(head.to_vec())
        };
        let u32_of = |r: &mut &[u8]| -> Result<u32, EngineError> {
            take(r, 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        if take(&mut r, 4)? != ENGINE_MAGIC {
            return Err(EngineError::CorruptEngineFile("bad magic"));
        }
        let model_len = u32_of(&mut r)? as usize;
        let model_bytes = take(&mut r, model_len)?;
        let (model, featurizer) = load_model(&model_bytes)?;
        let nprobe = u32_of(&mut r)? as usize;
        let batch_size = u32_of(&mut r)? as usize;
        let nlist_raw = u32_of(&mut r)? as usize;
        let seed = u64::from_le_bytes(
            take(&mut r, 8)?
                .try_into()
                .map_err(|_| EngineError::CorruptEngineFile("seed"))?,
        );
        let embeddings = match take(&mut r, 1)?[0] {
            0 => None,
            _ => {
                let rows = u32_of(&mut r)? as usize;
                let dim = u32_of(&mut r)? as usize;
                let n_bytes = rows
                    .checked_mul(dim)
                    .and_then(|n| n.checked_mul(4))
                    .ok_or(EngineError::CorruptEngineFile("embedding table size"))?;
                let raw = take(&mut r, n_bytes)?;
                let data: Vec<f32> = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                Some(Tensor::from_vec(data, Shape::d2(rows, dim)))
            }
        };
        let index = match take(&mut r, 1)?[0] {
            0 => None,
            _ => {
                let len = u32_of(&mut r)? as usize;
                let raw = take(&mut r, len)?;
                Some(
                    IvfIndex::from_bytes(&raw)
                        .ok_or(EngineError::CorruptEngineFile("ivf index"))?,
                )
            }
        };
        // Optional quantization tail: absent in pre-SQ8 engine files.
        let (quantization, rescore_factor) = if r.is_empty() {
            (
                index
                    .as_ref()
                    .map_or(Quantization::None, IvfIndex::quantization),
                index
                    .as_ref()
                    .map_or(DEFAULT_RESCORE_FACTOR, IvfIndex::rescore_factor),
            )
        } else {
            let tag = take(&mut r, 1)?[0];
            let rescore = (u32_of(&mut r)? as usize).max(1);
            let quant = match tag {
                0 => Quantization::None,
                1 => Quantization::Sq8,
                2 => {
                    let m = u32_of(&mut r)? as usize;
                    let nbits = take(&mut r, 1)?[0];
                    if m == 0 || nbits == 0 || nbits > 8 {
                        return Err(EngineError::CorruptEngineFile("pq geometry"));
                    }
                    Quantization::Pq { m, nbits }
                }
                _ => return Err(EngineError::CorruptEngineFile("quantization")),
            };
            (quant, rescore)
        };
        // Optional scan-mode tail: pre-symmetric files end at the
        // quantization tail and keep the asymmetric kernel; a restored
        // symmetric index also restores the mode (its IVF4 section
        // carries it) even when the engine tail predates the byte.
        let scan = if r.is_empty() {
            index
                .as_ref()
                .map_or(ScanMode::Asymmetric, IvfIndex::scan_mode)
        } else {
            match take(&mut r, 1)?[0] {
                0 => ScanMode::Asymmetric,
                1 => ScanMode::Symmetric,
                _ => return Err(EngineError::CorruptEngineFile("scan mode")),
            }
        };
        // Optional shard-count tail: pre-sharding files end at the scan
        // byte and serve unsharded.
        let shards = if r.is_empty() {
            1
        } else {
            let shards = u32_of(&mut r)? as usize;
            if shards == 0 || shards > MAX_SHARDS {
                return Err(EngineError::CorruptEngineFile("shard count"));
            }
            shards
        };
        // Optional durability tail: pre-WAL files end at the shard count
        // and serve ephemerally.
        let durability = if r.is_empty() {
            Durability::Ephemeral
        } else {
            let durability = match take(&mut r, 1)?[0] {
                0 => Durability::Ephemeral,
                1 => Durability::Buffered,
                2 => Durability::Fsync,
                _ => return Err(EngineError::CorruptEngineFile("durability")),
            };
            // The tail is the final field: anything after it is corruption.
            if !r.is_empty() {
                return Err(EngineError::CorruptEngineFile("trailing bytes"));
            }
            durability
        };
        Ok(Engine {
            backend: Box::new(TrajClBackend::new(model, featurizer)),
            database: Vec::new(),
            embeddings,
            index,
            nlist: (nlist_raw > 0).then_some(nlist_raw),
            nprobe,
            quantization,
            rescore_factor,
            scan,
            shards,
            durability,
            batch_size: batch_size.max(1),
            seed,
            train_report: None,
        })
    }
}

/// Builder-pattern construction of an [`Engine`]:
/// dataset → featurizer → backend → optional IVF index.
pub struct EngineBuilder {
    backend: Option<Box<dyn SimilarityBackend>>,
    database: Vec<Trajectory>,
    nlist: Option<usize>,
    nprobe: usize,
    quantization: Quantization,
    rescore_factor: usize,
    scan: ScanMode,
    shards: usize,
    durability: Durability,
    batch_size: usize,
    seed: u64,
    train_report: Option<TrainReport>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// A builder with no backend, no database and no index.
    pub fn new() -> Self {
        EngineBuilder {
            backend: None,
            database: Vec::new(),
            nlist: None,
            nprobe: 4,
            quantization: Quantization::None,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
            scan: ScanMode::Asymmetric,
            shards: 1,
            durability: Durability::Ephemeral,
            batch_size: DEFAULT_BATCH,
            seed: 0,
            train_report: None,
        }
    }

    /// Uses an explicit backend (any [`SimilarityBackend`]).
    pub fn backend(mut self, backend: Box<dyn SimilarityBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Uses a trained TrajCL model + featurizer as the backend.
    pub fn trajcl(
        self,
        model: trajcl_core::TrajClModel,
        featurizer: trajcl_core::Featurizer,
    ) -> Self {
        self.backend(Box::new(TrajClBackend::new(model, featurizer)))
    }

    /// Uses an exact heuristic measure as a no-embedding backend.
    pub fn heuristic(self, measure: HeuristicMeasure) -> Self {
        self.backend(Box::new(HeuristicBackend::new(measure)))
    }

    /// Trains TrajCL on the dataset's trajectories and uses it as the
    /// backend: builds the featurizer (grid + node2vec + normalisation),
    /// runs MoCo contrastive training, and stashes the [`TrainReport`]
    /// (readable via [`Engine::train_report`]).
    ///
    /// # Errors
    /// [`EngineError::TooFewTrajectories`] when the dataset cannot form a
    /// contrastive batch.
    pub fn train_trajcl(
        self,
        dataset: &Dataset,
        cfg: &TrajClConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, EngineError> {
        self.train_trajcl_on(dataset, &dataset.trajectories, cfg, rng)
    }

    /// Like [`EngineBuilder::train_trajcl`] but trains on an explicit
    /// subset (e.g. a train split) while building the featurizer over the
    /// full dataset region.
    pub fn train_trajcl_on(
        mut self,
        dataset: &Dataset,
        train_set: &[Trajectory],
        cfg: &TrajClConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, EngineError> {
        if train_set.len() < 2 {
            return Err(EngineError::TooFewTrajectories {
                needed: 2,
                got: train_set.len(),
            });
        }
        validate_batch(train_set)?;
        let featurizer = build_featurizer(dataset, cfg.dim, cfg.max_len, rng);
        let mut moco = MocoState::new(cfg, EncoderVariant::Dual, rng);
        let report = train(
            &mut moco,
            &featurizer,
            train_set,
            &trajcl_nn::StepDecay::trajcl_default(),
            rng,
        );
        self.train_report = Some(report);
        Ok(self.trajcl(moco.online, featurizer))
    }

    /// Sets the trajectory database the engine will serve.
    pub fn database(mut self, trajs: Vec<Trajectory>) -> Self {
        self.database = trajs;
        self
    }

    /// Builds an IVF index with `nlist` Voronoi cells over the database
    /// embeddings (ignored for heuristic backends).
    pub fn ivf_index(mut self, nlist: usize) -> Self {
        self.nlist = Some(nlist);
        self
    }

    /// Like [`EngineBuilder::ivf_index`] but optional (plumbing helper).
    pub fn maybe_ivf_index(mut self, nlist: Option<usize>) -> Self {
        self.nlist = nlist;
        self
    }

    /// Number of Voronoi cells probed per indexed query (default 4).
    pub fn nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Storage quantization of the IVF index (default exact f32).
    /// [`Quantization::Sq8`] stores database vectors as per-dimension
    /// int8 codes (4× smaller); [`Quantization::Pq`] as `m`-byte
    /// product-quantized codes (sub-byte per dimension). Both rescore
    /// quantized candidates against the exact cached embedding table at
    /// query time, so indexed engine kNN returns exact distances.
    pub fn quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// SQ8 rescoring over-fetch multiplier (default
    /// [`DEFAULT_RESCORE_FACTOR`]): indexed queries re-rank the top
    /// `rescore_factor · k` quantized candidates exactly.
    pub fn rescore_factor(mut self, rescore_factor: usize) -> Self {
        self.rescore_factor = rescore_factor.max(1);
        self
    }

    /// Scan kernel for quantized index scans (default asymmetric).
    /// [`ScanMode::Symmetric`] quantizes the query with the index's SQ8
    /// codebook too and scans codes against codes in integer arithmetic
    /// (runtime-dispatched SIMD); rescoring still returns exact
    /// distances.
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// Serving shard count (default 1, clamped to `1..=`[`MAX_SHARDS`]):
    /// how many hash-on-id index shards `trajcl-serve` partitions the
    /// engine's vectors into. Persisted with the engine.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, MAX_SHARDS);
        self
    }

    /// Write durability expectation for serving (default
    /// [`Durability::Ephemeral`]): persisted in the TCE1 tail so an
    /// operator-chosen policy travels with the engine file; honoured by
    /// `trajcl serve --wal DIR`, which pairs every index shard with a
    /// write-ahead log under this policy.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Inference mini-batch size (default [`DEFAULT_BATCH`]).
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Seed for index construction (k-means initialisation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assembles the engine: embeds the database (embedding backends) and
    /// builds the IVF index when requested.
    ///
    /// # Errors
    /// [`EngineError::InvalidInput`] when no backend was configured;
    /// embedding errors propagate from the backend.
    pub fn build(self) -> Result<Engine, EngineError> {
        let backend = self.backend.ok_or_else(|| {
            EngineError::InvalidInput("EngineBuilder: no backend configured".into())
        })?;
        let mut engine = Engine {
            backend,
            database: self.database,
            embeddings: None,
            index: None,
            nlist: self.nlist,
            nprobe: self.nprobe,
            quantization: self.quantization,
            rescore_factor: self.rescore_factor,
            scan: self.scan,
            shards: self.shards,
            durability: self.durability,
            batch_size: self.batch_size,
            seed: self.seed,
            train_report: self.train_report,
        };
        if engine.backend.supports_embedding() && !engine.database.is_empty() {
            let emb = engine.embed_all(&engine.database)?;
            if let Some(nlist) = engine.nlist {
                let mut rng = StdRng::seed_from_u64(engine.seed);
                engine.index = Some(IvfIndex::build_with_scan(
                    &emb,
                    nlist,
                    Metric::L1,
                    engine.quantization,
                    engine.rescore_factor,
                    engine.scan,
                    &mut rng,
                ));
            }
            engine.embeddings = Some(emb);
        }
        Ok(engine)
    }
}
