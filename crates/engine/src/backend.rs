//! The object-safe backend abstraction and its implementations.
//!
//! [`SimilarityBackend`] is the one seam every similarity method in the
//! workspace plugs into: TrajCL itself ([`TrajClBackend`]), any baseline
//! implementing `trajcl_baselines::TrajectoryEncoder` (via the blanket
//! adapter [`EncoderBackend`]), the exact heuristic measures
//! ([`HeuristicBackend`], a no-embedding fallback) and fine-tuned
//! heuristic estimators ([`FinetunedBackend`]). The trait is object-safe:
//! [`crate::Engine`] owns a `Box<dyn SimilarityBackend>`.

use crate::error::EngineError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use trajcl_baselines::TrajectoryEncoder;
use trajcl_core::{Featurizer, FinetunedEstimator, TrajClModel};
use trajcl_geo::{validate_batch, Trajectory};
use trajcl_measures::HeuristicMeasure;
use trajcl_nn::Fwd;
use trajcl_tensor::{InferCtx, Tape, Tensor};

/// Seed for the throwaway RNGs of eval-mode forward passes (only the
/// baseline adapter still records a tape at inference). Dropout is
/// disabled at inference, so the stream is never consumed — a fixed seed
/// keeps `&self` receivers and bit-for-bit reproducibility.
const EVAL_SEED: u64 = 0;

/// Locks a backend's serving [`InferCtx`], recovering from poison (a
/// panicked embed left only scratch buffers behind, which are safe to
/// reuse — every kernel fully overwrites its output).
fn lock_ctx(ctx: &Mutex<InferCtx>) -> std::sync::MutexGuard<'_, InferCtx> {
    ctx.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One similarity method behind a uniform, object-safe interface.
///
/// Implementations are *deterministic at inference*: calling
/// [`SimilarityBackend::embed_batch`] twice on the same input must produce
/// identical bytes (the engine's persistence tests rely on it).
///
/// The trait requires `Send + Sync` so an [`crate::Engine`] can be shared
/// across serving threads (`trajcl-serve` holds one behind an `Arc`).
pub trait SimilarityBackend: Send + Sync {
    /// Human-readable name (paper table spelling).
    fn name(&self) -> &str;

    /// Embedding dimensionality; `0` for measures with no embedding space.
    fn dim(&self) -> usize;

    /// Embeds a non-empty batch into `(B, dim)`.
    fn embed_batch(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError>;

    /// Like [`SimilarityBackend::embed_batch`] but running through a
    /// caller-owned [`InferCtx`] instead of the backend's internal serving
    /// context. This is the concurrency seam: a serving runtime with a
    /// pool of per-worker contexts embeds without ever contending on the
    /// backend's internal `Mutex`. Backends without a tape-free path fall
    /// back to [`SimilarityBackend::embed_batch`].
    fn embed_batch_with(
        &self,
        _ctx: &mut InferCtx,
        trajs: &[Trajectory],
    ) -> Result<Tensor, EngineError> {
        self.embed_batch(trajs)
    }

    /// Distance between two trajectories under this method (lower = more
    /// similar). Embedding backends use L1 in embedding space; heuristic
    /// backends compute the exact measure.
    fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError>;

    /// Whether this backend embeds into a vector space (and can therefore
    /// be served from a vector index).
    fn supports_embedding(&self) -> bool {
        self.dim() > 0
    }

    /// Access to the underlying TrajCL model, when this backend wraps one.
    /// This is the seam used by engine persistence and fine-tuning; every
    /// non-TrajCL backend returns `None`.
    fn as_trajcl(&self) -> Option<(&TrajClModel, &Featurizer)> {
        None
    }
}

fn l1(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs() as f64).sum()
}

/// The paper's model as a backend: DualSTB encoder + featurizer.
///
/// Serving goes through the tape-free [`InferCtx`] path — no autograd
/// bookkeeping, fused attention, and scratch buffers that persist across
/// `embed_batch` calls (the engine's chunk loop reuses them).
pub struct TrajClBackend {
    model: TrajClModel,
    featurizer: Featurizer,
    infer: Mutex<InferCtx>,
}

impl TrajClBackend {
    /// Wraps a trained (or freshly initialised) model and its featurizer.
    pub fn new(model: TrajClModel, featurizer: Featurizer) -> Self {
        TrajClBackend {
            model,
            featurizer,
            infer: Mutex::new(InferCtx::new()),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &TrajClModel {
        &self.model
    }

    /// The wrapped featurizer.
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }
}

impl SimilarityBackend for TrajClBackend {
    fn name(&self) -> &str {
        "TrajCL"
    }

    fn dim(&self) -> usize {
        self.model.cfg.dim
    }

    fn embed_batch(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        // One tape-free forward pass per call: the engine's `embed_all`
        // owns the chunking, so the batch-size knob is not silently
        // re-capped here; scratch buffers persist across calls.
        let mut ctx = lock_ctx(&self.infer);
        Ok(self
            .model
            .embed_chunked_with(&mut ctx, &self.featurizer, trajs, trajs.len()))
    }

    fn embed_batch_with(
        &self,
        ctx: &mut InferCtx,
        trajs: &[Trajectory],
    ) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        Ok(self
            .model
            .embed_chunked_with(ctx, &self.featurizer, trajs, trajs.len()))
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        let e = self.embed_batch(&[a.clone(), b.clone()])?;
        Ok(l1(e.row(0), e.row(1)))
    }

    fn as_trajcl(&self) -> Option<(&TrajClModel, &Featurizer)> {
        Some((&self.model, &self.featurizer))
    }
}

/// Blanket adapter: any `trajcl_baselines::TrajectoryEncoder` (t2vec,
/// CSTRM, T3S, TrajGAT, ...) becomes a [`SimilarityBackend`] without
/// per-baseline glue.
pub struct EncoderBackend<E: TrajectoryEncoder> {
    encoder: E,
}

impl<E: TrajectoryEncoder> EncoderBackend<E> {
    /// Wraps a baseline encoder.
    pub fn new(encoder: E) -> Self {
        EncoderBackend { encoder }
    }

    /// The wrapped encoder.
    pub fn encoder(&self) -> &E {
        &self.encoder
    }
}

impl<E: TrajectoryEncoder + Send + Sync> SimilarityBackend for EncoderBackend<E> {
    fn name(&self) -> &str {
        self.encoder.name()
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }

    fn embed_batch(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        let mut rng = StdRng::seed_from_u64(EVAL_SEED);
        // Single tape over the whole chunk (TrajectoryEncoder::embed would
        // re-chunk by its own batch_size and cap the engine's knob).
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, self.encoder.store(), &mut rng, false);
        let h = self.encoder.encode_on_tape(&mut f, trajs);
        Ok(tape.value(h).clone())
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        let e = self.embed_batch(&[a.clone(), b.clone()])?;
        Ok(l1(e.row(0), e.row(1)))
    }
}

/// Exact heuristic measures as a no-embedding fallback backend: `knn`
/// degrades to a database scan, `distance` is the measure itself.
pub struct HeuristicBackend {
    measure: HeuristicMeasure,
}

impl HeuristicBackend {
    /// Wraps a heuristic measure.
    pub fn new(measure: HeuristicMeasure) -> Self {
        HeuristicBackend { measure }
    }

    /// The wrapped measure.
    pub fn measure(&self) -> HeuristicMeasure {
        self.measure
    }
}

impl SimilarityBackend for HeuristicBackend {
    fn name(&self) -> &str {
        self.measure.name()
    }

    fn dim(&self) -> usize {
        0
    }

    fn embed_batch(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        Err(EngineError::NoEmbedding {
            backend: self.name().to_string(),
        })
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        if a.is_empty() || b.is_empty() {
            return Err(EngineError::EmptyTrajectory {
                index: usize::from(!a.is_empty()),
            });
        }
        Ok(self.measure.distance(a, b))
    }
}

/// A fine-tuned estimator of a heuristic measure (the output of
/// [`crate::Engine::approximate_measure`]): refined embeddings whose L1
/// distances track the target measure's ranking.
pub struct FinetunedBackend {
    estimator: FinetunedEstimator,
    featurizer: Featurizer,
    name: String,
    dim: usize,
    infer: Mutex<InferCtx>,
}

impl FinetunedBackend {
    /// Wraps a fine-tuned estimator; `target` names the approximated
    /// measure (for display).
    pub fn new(
        estimator: FinetunedEstimator,
        featurizer: Featurizer,
        target: &str,
        dim: usize,
    ) -> Self {
        FinetunedBackend {
            estimator,
            featurizer,
            name: format!("TrajCL~{target}"),
            dim,
            infer: Mutex::new(InferCtx::new()),
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &FinetunedEstimator {
        &self.estimator
    }
}

impl SimilarityBackend for FinetunedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_batch(&self, trajs: &[Trajectory]) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        let mut ctx = lock_ctx(&self.infer);
        Ok(self
            .estimator
            .embed_chunked_with(&mut ctx, &self.featurizer, trajs, trajs.len()))
    }

    fn embed_batch_with(
        &self,
        ctx: &mut InferCtx,
        trajs: &[Trajectory],
    ) -> Result<Tensor, EngineError> {
        validate_batch(trajs)?;
        Ok(self
            .estimator
            .embed_chunked_with(ctx, &self.featurizer, trajs, trajs.len()))
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, EngineError> {
        let e = self.embed_batch(&[a.clone(), b.clone()])?;
        Ok(l1(e.row(0), e.row(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use trajcl_core::{EncoderVariant, TrajClConfig};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};
    use trajcl_tensor::Shape;

    pub(crate) fn traj(n: usize, y: f64) -> Trajectory {
        (0..n)
            .map(|i| Point::new(40.0 + i as f64 * 45.0, y))
            .collect()
    }

    pub(crate) fn trajcl_backend() -> TrajClBackend {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
        TrajClBackend::new(model, feat)
    }

    #[test]
    fn trait_is_object_safe_across_all_families() {
        let mut rng = StdRng::seed_from_u64(1);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let tf = trajcl_baselines::TokenFeaturizer::new(region, 100.0, 64);
        let backends: Vec<Box<dyn SimilarityBackend>> = vec![
            Box::new(trajcl_backend()),
            Box::new(EncoderBackend::new(trajcl_baselines::T2Vec::new(
                tf.clone(),
                16,
                &mut rng,
            ))),
            Box::new(EncoderBackend::new(trajcl_baselines::T3s::new(
                tf, 16, 2, &mut rng,
            ))),
            Box::new(HeuristicBackend::new(HeuristicMeasure::Hausdorff)),
            Box::new(HeuristicBackend::new(HeuristicMeasure::Edwp)),
        ];
        let a = traj(8, 200.0);
        let b = traj(8, 800.0);
        for backend in &backends {
            let d = backend.distance(&a, &b).expect("distance");
            assert!(d.is_finite() && d >= 0.0, "{}: {d}", backend.name());
            let self_d = backend.distance(&a, &a).expect("self distance");
            assert!(
                self_d <= d,
                "{}: self-distance should not exceed cross",
                backend.name()
            );
            if backend.supports_embedding() {
                let e = backend
                    .embed_batch(std::slice::from_ref(&a))
                    .expect("embed");
                assert_eq!(e.shape(), Shape::d2(1, backend.dim()));
            } else {
                assert!(matches!(
                    backend.embed_batch(std::slice::from_ref(&a)),
                    Err(EngineError::NoEmbedding { .. })
                ));
            }
        }
    }

    #[test]
    fn embed_batch_with_matches_internal_context() {
        let backend = trajcl_backend();
        let batch = [traj(6, 100.0), traj(9, 500.0)];
        let internal = backend.embed_batch(&batch).unwrap();
        let mut ctx = InferCtx::new();
        let external = backend.embed_batch_with(&mut ctx, &batch).unwrap();
        assert!(
            internal.approx_eq(&external, 0.0),
            "caller-owned context must serve identical bytes"
        );
        // And the default-impl fallback still validates inputs.
        assert!(matches!(
            backend.embed_batch_with(&mut ctx, &[]),
            Err(EngineError::EmptyBatch)
        ));
    }

    #[test]
    fn embedding_is_deterministic_per_call() {
        let backend = trajcl_backend();
        let batch = [traj(6, 100.0), traj(9, 500.0)];
        let e1 = backend.embed_batch(&batch).unwrap();
        let e2 = backend.embed_batch(&batch).unwrap();
        assert!(
            e1.approx_eq(&e2, 0.0),
            "same input must embed to identical bytes"
        );
    }

    #[test]
    fn empty_inputs_surface_engine_errors() {
        let backend: Box<dyn SimilarityBackend> = Box::new(trajcl_backend());
        assert!(matches!(
            backend.embed_batch(&[]),
            Err(EngineError::EmptyBatch)
        ));
        let empty = Trajectory::new(Vec::new());
        assert!(matches!(
            backend.embed_batch(&[traj(5, 100.0), empty.clone()]),
            Err(EngineError::EmptyTrajectory { index: 1 })
        ));
        let heuristic = HeuristicBackend::new(HeuristicMeasure::Dtw);
        assert!(matches!(
            heuristic.distance(&empty, &traj(4, 100.0)),
            Err(EngineError::EmptyTrajectory { .. })
        ));
    }

    #[test]
    fn heuristic_backend_matches_exact_measure() {
        let backend = HeuristicBackend::new(HeuristicMeasure::Hausdorff);
        let a = traj(10, 100.0);
        let b = traj(10, 400.0);
        assert_eq!(
            backend.distance(&a, &b).unwrap(),
            HeuristicMeasure::Hausdorff.distance(&a, &b)
        );
    }

    #[test]
    fn gen_smoke_rng_compiles() {
        // Guards the shim's Rng surface used throughout the engine.
        let mut rng = StdRng::seed_from_u64(9);
        let _: f64 = rng.gen();
    }
}
