//! # trajcl-engine
//!
//! The unified similarity API over everything this workspace can do:
//!
//! * [`SimilarityBackend`] — one object-safe trait (`embed_batch`,
//!   `distance`, `dim`, `name`) implemented by TrajCL itself
//!   ([`TrajClBackend`]), every baseline encoder (via the blanket adapter
//!   [`EncoderBackend`]), exact heuristic measures ([`HeuristicBackend`])
//!   and fine-tuned estimators ([`FinetunedBackend`]);
//! * [`Engine`] / [`EngineBuilder`] — builder-pattern construction
//!   (dataset → featurizer → backend → optional IVF index), chunked
//!   [`Engine::embed_all`], [`Engine::knn`] that routes to the index or
//!   brute force automatically, [`Engine::approximate_measure`] wrapping
//!   fine-tuning, and whole-engine persistence
//!   ([`Engine::to_bytes`] / [`Engine::from_bytes`]);
//! * [`EngineError`] — one typed error for the whole stack, converted from
//!   the featurisation and persistence errors of the crates below.
//!
//! ```
//! use trajcl_data::{Dataset, DatasetProfile};
//! use trajcl_engine::Engine;
//! use trajcl_measures::HeuristicMeasure;
//!
//! let dataset = Dataset::generate(DatasetProfile::porto(), 30, 0);
//! // Heuristic backend: exact Hausdorff kNN, no training required.
//! let engine = Engine::builder()
//!     .heuristic(HeuristicMeasure::Hausdorff)
//!     .database(dataset.trajectories.clone())
//!     .build()
//!     .unwrap();
//! let hits = engine.knn(&dataset.trajectories[0], 3).unwrap();
//! assert_eq!(hits[0].0, 0); // the query itself is its own nearest neighbour
//! ```

pub mod backend;
pub mod engine;
pub mod error;

pub use backend::{
    EncoderBackend, FinetunedBackend, HeuristicBackend, SimilarityBackend, TrajClBackend,
};
pub use engine::{Engine, EngineBuilder, DEFAULT_BATCH, MAX_SHARDS};
pub use error::EngineError;
pub use trajcl_index::{Durability, Quantization, ScanMode};
