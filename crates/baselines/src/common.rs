//! Shared infrastructure for the baseline models: token featurisation and
//! the `TrajectoryEncoder` abstraction every baseline implements.

use rand::Rng;
use trajcl_geo::{validate_batch, Bbox, FeaturizeError, Grid, Trajectory};
use trajcl_nn::Fwd;
use trajcl_tensor::{Shape, Tape, Tensor, Var};

/// Featurises trajectories into grid-cell token sequences plus normalised
/// coordinates — the input representation shared by t2vec, CSTRM, T3S and
/// TrajGAT.
#[derive(Debug, Clone)]
pub struct TokenFeaturizer {
    /// The spatial grid whose cells are the token vocabulary.
    pub grid: Grid,
    region: Bbox,
    max_len: usize,
}

/// A tokenised mini-batch.
#[derive(Debug, Clone)]
pub struct TokenBatch {
    /// Cell token per point, row-major `(B, L)`; padding = 0.
    pub cells: Vec<u32>,
    /// Normalised `(x, y)` per point: `(B, L, 2)`.
    pub coords: Tensor,
    /// Valid length per element.
    pub lens: Vec<usize>,
    /// Padded length.
    pub seq_len: usize,
}

impl TokenFeaturizer {
    /// Builds a tokeniser over `region` with `cell_side`-meter cells.
    pub fn new(region: Bbox, cell_side: f64, max_len: usize) -> Self {
        TokenFeaturizer {
            grid: Grid::new(region, cell_side),
            region,
            max_len,
        }
    }

    /// Token vocabulary size.
    pub fn vocab(&self) -> usize {
        self.grid.num_cells()
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Tokenises a batch, padding to its longest member.
    ///
    /// # Errors
    /// [`FeaturizeError::EmptyBatch`] on an empty batch,
    /// [`FeaturizeError::EmptyTrajectory`] when a member has no points.
    pub fn featurize(&self, trajs: &[Trajectory]) -> Result<TokenBatch, FeaturizeError> {
        validate_batch(trajs)?;
        let b = trajs.len();
        let lens: Vec<usize> = trajs.iter().map(|t| t.len().min(self.max_len)).collect();
        let l = lens.iter().copied().max().unwrap_or(0);
        let mut cells = vec![0u32; b * l];
        let mut coords = Tensor::zeros(Shape::d3(b, l, 2));
        let (w, h) = (
            self.region.width().max(1e-9),
            self.region.height().max(1e-9),
        );
        for (bi, traj) in trajs.iter().enumerate() {
            for (t, p) in traj.points().iter().take(lens[bi]).enumerate() {
                cells[bi * l + t] = self.grid.cell_of(p);
                coords.data_mut()[(bi * l + t) * 2] =
                    (2.0 * (p.x - self.region.min.x) / w - 1.0) as f32;
                coords.data_mut()[(bi * l + t) * 2 + 1] =
                    (2.0 * (p.y - self.region.min.y) / h - 1.0) as f32;
            }
        }
        Ok(TokenBatch {
            cells,
            coords,
            lens,
            seq_len: l,
        })
    }
}

/// A trainable trajectory-embedding model. Implemented by every baseline so
/// the experiment harness can treat them uniformly.
pub trait TrajectoryEncoder {
    /// Human-readable name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Parameter store (for optimizers / persistence).
    fn store(&self) -> &trajcl_nn::ParamStore;

    /// Mutable parameter store.
    fn store_mut(&mut self) -> &mut trajcl_nn::ParamStore;

    /// Encodes a batch on an existing tape, returning `(B, dim)`.
    ///
    /// The `Fwd` context must be bound to this model's store.
    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var;

    /// Inference batch size.
    fn batch_size(&self) -> usize {
        32
    }

    /// Embeds trajectories in eval mode, `(N, dim)`.
    fn embed(&self, trajs: &[Trajectory], rng: &mut impl Rng) -> Tensor
    where
        Self: Sized,
    {
        let d = self.dim();
        let mut out = Tensor::zeros(Shape::d2(trajs.len(), d));
        let mut row = 0usize;
        for chunk in trajs.chunks(self.batch_size().max(1)) {
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, self.store(), rng, false);
            let h = self.encode_on_tape(&mut f, chunk);
            out.data_mut()[row * d..(row + chunk.len()) * d].copy_from_slice(tape.value(h).data());
            row += chunk.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_geo::Point;

    fn region() -> Bbox {
        Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 500.0))
    }

    #[test]
    fn tokenizer_shapes_and_padding() {
        let tf = TokenFeaturizer::new(region(), 100.0, 64);
        let a: Trajectory = (0..5).map(|i| Point::new(i as f64 * 100.0, 50.0)).collect();
        let b: Trajectory = (0..8).map(|i| Point::new(i as f64 * 50.0, 400.0)).collect();
        let batch = tf.featurize(&[a, b]).expect("featurize");
        assert_eq!(batch.seq_len, 8);
        assert_eq!(batch.lens, vec![5, 8]);
        assert_eq!(batch.cells.len(), 16);
        assert_eq!(batch.coords.shape(), Shape::d3(2, 8, 2));
        // Padding slots hold token 0 / zero coords.
        for t in 5..8 {
            assert_eq!(batch.cells[t], 0);
            assert_eq!(batch.coords.at3(0, t, 0), 0.0);
        }
    }

    #[test]
    fn coords_normalised_to_unit_box() {
        let tf = TokenFeaturizer::new(region(), 100.0, 64);
        let t: Trajectory = vec![Point::new(0.0, 0.0), Point::new(1000.0, 500.0)]
            .into_iter()
            .collect();
        let batch = tf.featurize(std::slice::from_ref(&t)).expect("featurize");
        assert_eq!(batch.coords.at3(0, 0, 0), -1.0);
        assert_eq!(batch.coords.at3(0, 0, 1), -1.0);
        assert_eq!(batch.coords.at3(0, 1, 0), 1.0);
        assert_eq!(batch.coords.at3(0, 1, 1), 1.0);
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let tf = TokenFeaturizer::new(region(), 100.0, 64);
        assert_eq!(tf.featurize(&[]).err(), Some(FeaturizeError::EmptyBatch));
    }

    #[test]
    fn empty_trajectory_is_an_error_with_index() {
        let tf = TokenFeaturizer::new(region(), 100.0, 64);
        let ok: Trajectory = (0..4).map(|i| Point::new(i as f64 * 100.0, 50.0)).collect();
        assert_eq!(
            tf.featurize(&[ok, Trajectory::new(Vec::new())]).err(),
            Some(FeaturizeError::EmptyTrajectory { index: 1 })
        );
    }

    #[test]
    fn long_inputs_truncate() {
        let tf = TokenFeaturizer::new(region(), 100.0, 4);
        let t: Trajectory = (0..20).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let batch = tf.featurize(std::slice::from_ref(&t)).expect("featurize");
        assert_eq!(batch.seq_len, 4);
        assert_eq!(batch.lens, vec![4]);
    }
}
