//! TrajGAT \[21\]: graph-based attention for long-term trajectory dependency.
//!
//! The original builds a PyG graph transformer over a quadtree of spatial
//! cells. We reproduce the essential mechanism — attention over cell
//! tokens *biased by the spatial adjacency graph* — with a standard
//! encoder whose attention scores receive a learnable additive bonus for
//! token pairs whose cells are grid-adjacent, and cell embeddings
//! initialised from node2vec so the grid topology is available from step
//! one (DESIGN.md §4). Like the original, it trains supervised via pair
//! regression and uses a smaller embedding width by default (the paper
//! notes TrajGAT performs best at its default `d = 32`).

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_graph::{node2vec_cell_embeddings, SgnsConfig, WalkConfig};
use trajcl_nn::attention::{add_positional, attention_mask_bias, sinusoidal_pe, MASK_NEG};
use trajcl_nn::{Embedding, Fwd, ParamStore, TransformerEncoderLayer};
use trajcl_tensor::{Tensor, Var};

pub use crate::supervised::SupervisedConfig as TrajGatConfig;

/// TrajGAT model.
pub struct TrajGat {
    store: ParamStore,
    cell_emb: Embedding,
    layers: Vec<TransformerEncoderLayer>,
    adj_weight: trajcl_nn::ParamId,
    featurizer: TokenFeaturizer,
    dim: usize,
    heads: usize,
}

impl TrajGat {
    /// Builds TrajGAT with node2vec-initialised cell embeddings.
    pub fn new(
        featurizer: TokenFeaturizer,
        dim: usize,
        heads: usize,
        layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut store = ParamStore::new();
        let table = node2vec_cell_embeddings(
            &featurizer.grid,
            &WalkConfig {
                walk_length: 10,
                walks_per_node: 2,
                p: 1.0,
                q: 1.0,
            },
            &SgnsConfig {
                dim,
                epochs: 1,
                ..Default::default()
            },
            rng,
        );
        let cell_emb = Embedding::from_pretrained(&mut store, "gat.cells", table);
        let layers = (0..layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    &mut store,
                    &format!("gat.layer{i}"),
                    dim,
                    heads,
                    dim * 2,
                    0.1,
                    rng,
                )
            })
            .collect();
        let adj_weight = store.add("gat.adj_weight", Tensor::scalar(1.0));
        TrajGat {
            store,
            cell_emb,
            layers,
            adj_weight,
            featurizer,
            dim,
            heads,
        }
    }

    /// Adjacency bonus matrix for a tokenised batch: `1` where two valid
    /// points lie in the same or 8-adjacent cells, `0` elsewhere;
    /// [`MASK_NEG`] on padded keys. Shape `(B*heads, L, L)`.
    fn graph_bias(&self, cells: &[u32], lens: &[usize], l: usize) -> Tensor {
        let grid = &self.featurizer.grid;
        let mut bias = attention_mask_bias(lens, l, self.heads);
        for (bi, &len) in lens.iter().enumerate() {
            for qi in 0..len {
                let (cq, rq) = grid.col_row(cells[bi * l + qi]);
                for ki in 0..len {
                    let (ck, rk) = grid.col_row(cells[bi * l + ki]);
                    if cq.abs_diff(ck) <= 1 && rq.abs_diff(rk) <= 1 {
                        for h in 0..self.heads {
                            let base = ((bi * self.heads + h) * l + qi) * l + ki;
                            // Leave masked slots masked.
                            if bias.data()[base] > MASK_NEG / 2.0 {
                                bias.data_mut()[base] = 1.0;
                            }
                        }
                    }
                }
            }
        }
        bias
    }

    /// Supervised training via pair regression.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        measure: trajcl_measures::HeuristicMeasure,
        cfg: &TrajGatConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        crate::supervised::train_pair_regression(self, pool, measure, cfg, rng)
    }
}

impl TrajectoryEncoder for TrajGat {
    fn name(&self) -> &'static str {
        "TrajGAT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let (b, l) = (batch.lens.len(), batch.seq_len);
        let emb = self.cell_emb.forward_seq(f, &batch.cells, b, l);
        let pe = sinusoidal_pe(l, self.dim);
        let mut x = add_positional(f, emb, &pe);
        // Padding mask + learnable-scaled adjacency bonus.
        let raw_bias = self.graph_bias(&batch.cells, &batch.lens, l);
        let mask_only = raw_bias.map(|v| if v <= MASK_NEG / 2.0 { v } else { 0.0 });
        let adj_only = raw_bias.map(|v| if v > MASK_NEG / 2.0 { v } else { 0.0 });
        let mask_var = f.input(mask_only);
        let adj_var = f.input(adj_only);
        let w = f.p(self.adj_weight);
        let scaled_adj = f.tape.mul_scalar_var(adj_var, w);
        let bias = f.tape.add(mask_var, scaled_adj);
        for layer in &self.layers {
            let (xn, _) = layer.forward(f, x, Some(bias));
            x = xn;
        }
        f.tape.mean_pool_masked(x, &batch.lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};
    use trajcl_measures::HeuristicMeasure;
    use trajcl_tensor::Shape;

    fn setup() -> (TrajGat, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(6);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1500.0, 1500.0));
        let tf = TokenFeaturizer::new(region, 300.0, 24);
        let model = TrajGat::new(tf, 16, 2, 1, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..10)
            .map(|_| {
                let y = rng.gen_range(100.0..1400.0);
                (0..10).map(|i| Point::new(i as f64 * 150.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn graph_bias_marks_adjacent_cells() {
        let (model, pool, _) = setup();
        let batch = model.featurizer.featurize(&pool[..1]).expect("featurize");
        let bias = model.graph_bias(&batch.cells, &batch.lens, batch.seq_len);
        // Self-pairs are always adjacent (same cell).
        for q in 0..batch.lens[0] {
            assert_eq!(bias.at3(0, q, q), 1.0);
        }
        // Consecutive points (150 m apart, 300 m cells) are adjacent.
        assert_eq!(bias.at3(0, 0, 1), 1.0);
        // Distant points (>600 m) are not.
        assert_eq!(bias.at3(0, 0, 8), 0.0);
    }

    #[test]
    fn embeds_and_trains() {
        let (mut model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        let cfg = TrajGatConfig {
            pairs_per_epoch: 32,
            batch_pairs: 8,
            epochs: 2,
            lr: 2e-3,
        };
        let losses = model.train(&pool, HeuristicMeasure::Hausdorff, &cfg, &mut rng);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses[1] <= losses[0] * 1.5, "loss exploded: {losses:?}");
    }
}
