//! TrjSR \[12\]: trajectory similarity via single-image super-resolution.
//!
//! TrjSR rasterises each trajectory into an image and trains a CNN with a
//! super-resolution objective; the CNN features become the embedding. We
//! reproduce the pipeline with a same-resolution variant of the SR task:
//! the input image is rendered from a *down-sampled* view of the
//! trajectory (sparse dots) and the CNN must reconstruct the *full*
//! trajectory's rasterisation (the dense path) — i.e. recover fine detail
//! the sparse image lost, which is exactly the super-resolution signal the
//! original exploits (DESIGN.md §4 records this substitution).

use crate::common::TrajectoryEncoder;
use rand::Rng;
use trajcl_data::downsample;
use trajcl_geo::{Bbox, Trajectory};
use trajcl_nn::{Adam, Conv2d, Fwd, Linear, ParamStore};
use trajcl_tensor::{Shape, Tape, Tensor, Var};

/// Rasterises trajectories into single-channel `res × res` images over a
/// fixed region.
#[derive(Debug, Clone)]
pub struct Rasterizer {
    region: Bbox,
    /// Image side length in pixels.
    pub res: usize,
}

impl Rasterizer {
    /// New rasterizer for `region` at `res × res` pixels.
    pub fn new(region: Bbox, res: usize) -> Self {
        assert!(res >= 4, "resolution too small");
        Rasterizer { region, res }
    }

    /// Renders one trajectory: each point brightens its pixel; segments
    /// are densified so the path is continuous at the image scale.
    pub fn render(&self, traj: &Trajectory) -> Vec<f32> {
        let mut img = vec![0.0f32; self.res * self.res];
        let (w, h) = (
            self.region.width().max(1e-9),
            self.region.height().max(1e-9),
        );
        let mut plot = |x: f64, y: f64| {
            let px = (((x - self.region.min.x) / w) * self.res as f64)
                .clamp(0.0, self.res as f64 - 1.0) as usize;
            let py = (((y - self.region.min.y) / h) * self.res as f64)
                .clamp(0.0, self.res as f64 - 1.0) as usize;
            img[py * self.res + px] = 1.0;
        };
        for p in traj.points() {
            plot(p.x, p.y);
        }
        // Densify long segments so the rendered path is connected.
        let pix_w = w / self.res as f64;
        for (a, b) in traj.segments() {
            let steps = (a.dist(&b) / pix_w).ceil() as usize;
            for s in 1..steps {
                let t = s as f64 / steps as f64;
                let p = a.lerp(&b, t);
                plot(p.x, p.y);
            }
        }
        img
    }

    /// Renders a batch into an NCHW tensor `(B, 1, res, res)`.
    pub fn render_batch(&self, trajs: &[Trajectory]) -> Tensor {
        let mut data = Vec::with_capacity(trajs.len() * self.res * self.res);
        for t in trajs {
            data.extend(self.render(t));
        }
        Tensor::from_vec(data, Shape::d4(trajs.len(), 1, self.res, self.res))
    }
}

/// TrjSR model: encoder CNN (embedding) + reconstruction CNN (training
/// signal only).
pub struct TrjSr {
    store: ParamStore,
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    recon: Conv2d,
    emb_proj: Linear,
    raster: Rasterizer,
    dim: usize,
    channels: usize,
}

/// TrjSR training configuration.
#[derive(Debug, Clone)]
pub struct TrjSrConfig {
    /// Embedding width.
    pub dim: usize,
    /// Image resolution.
    pub res: usize,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Down-sampling rate producing the degraded input view.
    pub corrupt_rate: f64,
}

impl Default for TrjSrConfig {
    fn default() -> Self {
        TrjSrConfig {
            dim: 32,
            res: 24,
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            corrupt_rate: 0.5,
        }
    }
}

impl TrjSr {
    /// Builds an untrained TrjSR over `region`.
    pub fn new(region: Bbox, cfg: &TrjSrConfig, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let ch = 8;
        let conv1 = Conv2d::new(&mut store, "trjsr.conv1", 1, ch, 3, 1, 1, rng);
        let conv2 = Conv2d::new(&mut store, "trjsr.conv2", ch, ch, 3, 1, 1, rng);
        let conv3 = Conv2d::new(&mut store, "trjsr.conv3", ch, ch, 3, 1, 1, rng);
        let recon = Conv2d::new(&mut store, "trjsr.recon", ch, 1, 3, 1, 1, rng);
        let emb_proj = Linear::new(&mut store, "trjsr.emb", ch, cfg.dim, rng);
        TrjSr {
            store,
            conv1,
            conv2,
            conv3,
            recon,
            emb_proj,
            raster: Rasterizer::new(region, cfg.res),
            dim: cfg.dim,
            channels: ch,
        }
    }

    /// The rasterizer in use.
    pub fn rasterizer(&self) -> &Rasterizer {
        &self.raster
    }

    fn features(&self, f: &mut Fwd, images: Tensor) -> Var {
        let x = f.input(images);
        let c1 = self.conv1.forward(f, x);
        let c1 = f.tape.relu(c1);
        let c2 = self.conv2.forward(f, c1);
        let c2 = f.tape.relu(c2);
        let c3 = self.conv3.forward(f, c2);
        f.tape.relu(c3)
    }

    /// One SR-style training step; returns the reconstruction MSE.
    pub fn train_step(
        &mut self,
        trajs: &[Trajectory],
        opt: &mut Adam,
        cfg: &TrjSrConfig,
        rng: &mut impl Rng,
    ) -> f32 {
        let degraded: Vec<Trajectory> = trajs
            .iter()
            .map(|t| downsample(t, cfg.corrupt_rate, rng))
            .collect();
        let input = self.raster.render_batch(&degraded);
        let target = self.raster.render_batch(trajs);
        let mut tape = Tape::new();
        let loss_val;
        {
            let mut f = Fwd::new(&mut tape, &self.store, rng, true);
            let feats = self.features(&mut f, input);
            let pred = self.recon.forward(&mut f, feats);
            let tgt = f.input(target);
            let diff = f.tape.sub(pred, tgt);
            let sq = f.tape.mul(diff, diff);
            let loss = f.tape.mean_all(sq);
            loss_val = f.tape.value(loss).data()[0];
            let grads = f.tape.backward(loss);
            self.store.accumulate(grads.into_param_grads(f.tape));
        }
        self.store.clip_grad_norm(5.0);
        opt.step(&mut self.store);
        loss_val
    }

    /// Trains for `cfg.epochs`; returns per-epoch mean losses.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        cfg: &TrjSrConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(cfg.lr);
        let mut losses = Vec::new();
        for _ in 0..cfg.epochs {
            let mut total = 0.0;
            let mut n = 0;
            for chunk in pool.chunks(cfg.batch_size) {
                if chunk.is_empty() {
                    continue;
                }
                total += self.train_step(chunk, &mut opt, cfg, rng);
                n += 1;
            }
            losses.push(total / n.max(1) as f32);
        }
        losses
    }
}

impl TrajectoryEncoder for TrjSr {
    fn name(&self) -> &'static str {
        "TrjSR"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn batch_size(&self) -> usize {
        16
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let images = self.raster.render_batch(trajs);
        let feats = self.features(f, images);
        let pooled = f.tape.avg_pool2d_global(feats); // (B, ch)
        debug_assert_eq!(f.tape.shape(pooled).last(), self.channels);
        self.emb_proj.forward(f, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::Point;

    fn setup() -> (TrjSr, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(2);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let cfg = TrjSrConfig {
            dim: 16,
            res: 16,
            ..Default::default()
        };
        let model = TrjSr::new(region, &cfg, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..10)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..15).map(|i| Point::new(i as f64 * 130.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn rasterizer_marks_path_pixels() {
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let r = Rasterizer::new(region, 10);
        let t: Trajectory = vec![Point::new(5.0, 5.0), Point::new(95.0, 5.0)]
            .into_iter()
            .collect();
        let img = r.render(&t);
        // The bottom row should be fully lit (densified segment).
        let lit: usize = img[..10].iter().filter(|&&v| v > 0.0).count();
        assert!(lit == 10, "expected a continuous line, lit {lit}/10");
        // Upper rows untouched.
        assert!(img[50..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_reduces_sr_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = TrjSrConfig {
            dim: 16,
            res: 16,
            epochs: 3,
            batch_size: 5,
            ..Default::default()
        };
        let losses = model.train(&pool, &cfg, &mut rng);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses[2] < losses[0], "SR loss should drop: {losses:?}");
    }

    #[test]
    fn embedding_shape() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        assert!(e.all_finite());
    }
}
