//! # trajcl-baselines
//!
//! Re-implementations of every comparison method in the paper's evaluation:
//!
//! **Self-supervised learned measures** (§II "learned measures"):
//! * [`t2vec`] — GRU seq2seq denoising autoencoder over cell tokens \[11\];
//! * [`e2dtc`] — t2vec backbone + clustering self-training \[14\];
//! * [`trjsr`] — CNN over rasterised trajectory images with a
//!   super-resolution objective \[12\];
//! * [`cstrm`] — contrastive learning with a vanilla-MSM encoder over
//!   trainable cell tokens \[13\].
//!
//! **Supervised approximators** (Table X competitors):
//! * [`neutraj`] — LSTM + spatial memory \[18\] (extension baseline);
//! * [`t3s`] — LSTM + self-attention blend \[20\];
//! * [`traj2simvec`] — coordinate LSTM with sampled pair regression \[19\];
//! * [`trajgat`] — adjacency-biased attention over cell tokens \[21\].
//!
//! All models implement [`TrajectoryEncoder`], so the experiment harness
//! ranks them with the same embedding-space L1 machinery as TrajCL.
//! Simplifications relative to the originals are listed in DESIGN.md §4.

pub mod common;
pub mod cstrm;
pub mod e2dtc;
pub mod neutraj;
pub mod supervised;
pub mod t2vec;
pub mod t3s;
pub mod traj2simvec;
pub mod trajgat;
pub mod trjsr;

pub use common::{TokenBatch, TokenFeaturizer, TrajectoryEncoder};
pub use cstrm::{Cstrm, CstrmConfig};
pub use e2dtc::{E2dtc, E2dtcConfig};
pub use neutraj::Neutraj;
pub use supervised::{train_pair_regression, SupervisedConfig};
pub use t2vec::{T2Vec, T2VecConfig};
pub use t3s::T3s;
pub use traj2simvec::Traj2SimVec;
pub use trajgat::TrajGat;
pub use trjsr::{Rasterizer, TrjSr, TrjSrConfig};
