//! t2vec \[11\]: RNN sequence-to-sequence trajectory representation learning.
//!
//! The original trains a GRU encoder–decoder to reconstruct the cell-token
//! sequence of a clean trajectory from a down-sampled/distorted view, with
//! an approximated softmax over the (large) cell vocabulary. We reproduce
//! exactly that shape: GRU encoder → final state = embedding; GRU decoder
//! conditioned on the state predicts each clean token with a
//! sampled-softmax cross-entropy (true cell + `k` random negative cells),
//! which is also how the original handles its vocabulary.

use crate::common::{TokenBatch, TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_data::{downsample, point_shift};
use trajcl_geo::Trajectory;
use trajcl_nn::{run_gru, Adam, Embedding, Fwd, GruCell, Linear, ParamStore};
use trajcl_tensor::{Shape, Tape, Var};

/// t2vec model: token embedding + encoder/decoder GRUs.
pub struct T2Vec {
    store: ParamStore,
    cell_emb: Embedding,
    encoder: GruCell,
    decoder: GruCell,
    out_proj: Linear,
    featurizer: TokenFeaturizer,
    dim: usize,
}

/// t2vec training hyper-parameters.
#[derive(Debug, Clone)]
pub struct T2VecConfig {
    /// Embedding / hidden width.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negative cells per decoding step in the sampled softmax.
    pub neg_cells: usize,
    /// Down-sampling rate used to corrupt the source view.
    pub corrupt_rate: f64,
}

impl Default for T2VecConfig {
    fn default() -> Self {
        T2VecConfig {
            dim: 32,
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            neg_cells: 8,
            corrupt_rate: 0.3,
        }
    }
}

impl T2Vec {
    /// Builds an untrained t2vec model over the tokenizer's vocabulary.
    pub fn new(featurizer: TokenFeaturizer, dim: usize, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let vocab = featurizer.vocab();
        let cell_emb = Embedding::new(&mut store, "t2vec.cells", vocab, dim, rng);
        let encoder = GruCell::new(&mut store, "t2vec.enc", dim, dim, rng);
        let decoder = GruCell::new(&mut store, "t2vec.dec", dim, dim, rng);
        let out_proj = Linear::new(&mut store, "t2vec.out", dim, dim, rng);
        T2Vec {
            store,
            cell_emb,
            encoder,
            decoder,
            out_proj,
            featurizer,
            dim,
        }
    }

    /// The token featurizer (grid) this model was built over.
    pub fn featurizer(&self) -> &TokenFeaturizer {
        &self.featurizer
    }

    fn embed_tokens(&self, f: &mut Fwd, batch: &TokenBatch) -> Var {
        self.cell_emb
            .forward_seq(f, &batch.cells, batch.lens.len(), batch.seq_len)
    }

    /// One denoising-autoencoder training step; returns the batch loss.
    ///
    /// The source view is a corrupted (down-sampled + jittered) copy; the
    /// decoder reconstructs the clean token sequence via sampled softmax.
    pub fn train_step(
        &mut self,
        trajs: &[Trajectory],
        opt: &mut Adam,
        cfg: &T2VecConfig,
        rng: &mut impl Rng,
    ) -> f32 {
        let corrupted: Vec<Trajectory> = trajs
            .iter()
            .map(|t| {
                let down = downsample(t, cfg.corrupt_rate, rng);
                point_shift(&down, 30.0, 0.5, rng)
            })
            .collect();
        let src = self
            .featurizer
            .featurize(&corrupted)
            .expect("non-empty batch");
        let dst = self.featurizer.featurize(trajs).expect("non-empty batch");
        let vocab = self.featurizer.vocab();
        let b = trajs.len();

        // Pre-sample the negative cells for every decoding step: the RNG
        // is moved into the forward context below.
        let horizon = dst.seq_len.min(24);
        let mut negatives: Vec<Vec<u32>> = Vec::with_capacity(horizon);
        for t in 0..horizon {
            let mut cand_ids = Vec::with_capacity(b * (cfg.neg_cells + 1));
            for bi in 0..b {
                let true_cell = dst.cells[bi * dst.seq_len + t];
                cand_ids.push(true_cell);
                for _ in 0..cfg.neg_cells {
                    cand_ids.push(rng.gen_range(0..vocab as u32));
                }
            }
            negatives.push(cand_ids);
        }
        let mut tape = Tape::new();
        let loss_val;
        {
            let mut f = Fwd::new(&mut tape, &self.store, rng, true);
            let src_emb = self.embed_tokens(&mut f, &src);
            let (_, state) = run_gru(&mut f, &self.encoder, src_emb, &src.lens);

            // Teacher-forced decoding of the clean sequence.
            let dst_emb = self.embed_tokens(&mut f, &dst);
            let mut h = state;
            let mut step_losses = Vec::new();
            // The reconstruction horizon is capped: gradients through very
            // long teacher-forced chains dominate runtime without changing
            // the learned encoder much.
            for (t, cand_ids) in negatives.iter().enumerate() {
                let x_t = f.tape.select_time(dst_emb, t);
                h = self.decoder.step(&mut f, x_t, h);
                let logits_src = self.out_proj.forward(&mut f, h); // (B, dim)

                // Sampled softmax: score = h · E[cell] for candidates
                // {true, negatives...}; cross-entropy with target index 0.
                let table = f.p(self.cell_emb_table_id());
                let cand = f.tape.embedding(table, cand_ids); // (B*(k+1), dim)
                let cand3 = f
                    .tape
                    .reshape(cand, Shape::d3(b, cfg.neg_cells + 1, self.dim));
                let h3 = f.tape.reshape(logits_src, Shape::d3(b, 1, self.dim));
                let scores = f.tape.matmul(h3, cand3, false, true); // (B, 1, k+1)
                let scores2 = f.tape.reshape(scores, Shape::d2(b, cfg.neg_cells + 1));
                let targets = vec![0usize; b];
                step_losses.push(f.tape.cross_entropy(scores2, &targets));
            }
            let total = step_losses
                .iter()
                .skip(1)
                .fold(step_losses[0], |acc, &l| f.tape.add(acc, l));
            let loss = f.tape.scale(total, 1.0 / step_losses.len() as f32);
            loss_val = f.tape.value(loss).data()[0];
            let grads = f.tape.backward(loss);
            self.store.accumulate(grads.into_param_grads(f.tape));
        }
        self.store.clip_grad_norm(5.0);
        opt.step(&mut self.store);
        loss_val
    }

    fn cell_emb_table_id(&self) -> trajcl_nn::ParamId {
        // The embedding table is the first registered parameter.
        self.store
            .ids_where(|n| n == "t2vec.cells.table")
            .first()
            .copied()
            .expect("embedding table registered")
    }

    /// Trains on `pool` for `cfg.epochs` epochs; returns per-epoch losses.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        cfg: &T2VecConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(cfg.lr);
        let mut losses = Vec::new();
        for _ in 0..cfg.epochs {
            let mut total = 0.0;
            let mut n = 0;
            for chunk in pool.chunks(cfg.batch_size) {
                if chunk.is_empty() {
                    continue;
                }
                total += self.train_step(chunk, &mut opt, cfg, rng);
                n += 1;
            }
            losses.push(total / n.max(1) as f32);
        }
        losses
    }
}

impl TrajectoryEncoder for T2Vec {
    fn name(&self) -> &'static str {
        "t2vec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let emb = self.embed_tokens(f, &batch);
        let (_, state) = run_gru(f, &self.encoder, emb, &batch.lens);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};

    fn setup() -> (T2Vec, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let model = T2Vec::new(tf, 16, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..12)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..14).map(|i| Point::new(i as f64 * 140.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn embeds_with_correct_shape() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        assert!(e.all_finite());
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = T2VecConfig {
            dim: 16,
            epochs: 4,
            batch_size: 6,
            ..Default::default()
        };
        let losses = model.train(&pool, &cfg, &mut rng);
        assert_eq!(losses.len(), 4);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(
            losses[3] < losses[0],
            "reconstruction loss should drop: {losses:?}"
        );
    }

    #[test]
    fn different_trajectories_get_different_embeddings() {
        let (model, _, mut rng) = setup();
        // Fixed rows several grid cells apart so the token sequences are
        // guaranteed to differ (random rows may share a cell row).
        let a: Trajectory = (0..14)
            .map(|i| Point::new(i as f64 * 140.0, 300.0))
            .collect();
        let b: Trajectory = (0..14)
            .map(|i| Point::new(i as f64 * 140.0, 1500.0))
            .collect();
        let e = model.embed(&[a, b], &mut rng);
        let d: f32 = (0..16).map(|k| (e.at2(0, k) - e.at2(1, k)).abs()).sum();
        assert!(d > 1e-4);
    }
}
