//! Shared supervised training for the Table X baselines: regress pairwise
//! heuristic distances in embedding space (the NeuTraj-family objective
//! that Traj2SimVec, T3S and TrajGAT all optimise variants of).
//!
//! Loss: `(‖e_a − e_b‖₁ − d_heuristic/σ)²` with σ the mean heuristic
//! distance, so ranking by embedding L1 distance approximates ranking by
//! the heuristic.

use crate::common::TrajectoryEncoder;
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_measures::HeuristicMeasure;
use trajcl_nn::{Adam, Fwd};
use trajcl_tensor::{Shape, Tape, Tensor};

/// Supervised pair-regression hyper-parameters.
#[derive(Debug, Clone)]
pub struct SupervisedConfig {
    /// Pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Pairs per optimisation step.
    pub batch_pairs: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        SupervisedConfig {
            pairs_per_epoch: 256,
            batch_pairs: 16,
            epochs: 4,
            lr: 1e-3,
        }
    }
}

/// Trains `model` to approximate `measure` on `pool`; returns per-epoch
/// mean losses.
pub fn train_pair_regression<E: TrajectoryEncoder>(
    model: &mut E,
    pool: &[Trajectory],
    measure: HeuristicMeasure,
    cfg: &SupervisedConfig,
    rng: &mut impl Rng,
) -> Vec<f32> {
    assert!(pool.len() >= 2, "need at least two trajectories");
    // σ calibration.
    let mut sample = Vec::new();
    for _ in 0..64.min(pool.len() * 2) {
        let i = rng.gen_range(0..pool.len());
        let mut j = rng.gen_range(0..pool.len());
        if i == j {
            j = (j + 1) % pool.len();
        }
        sample.push(measure.distance(&pool[i], &pool[j]));
    }
    let sigma = (sample.iter().sum::<f64>() / sample.len().max(1) as f64).max(1e-9);

    let mut opt = Adam::new(cfg.lr);
    let d = model.dim();
    let mut losses = Vec::new();
    for _ in 0..cfg.epochs {
        let mut total = 0.0;
        let mut steps = 0;
        let mut remaining = cfg.pairs_per_epoch;
        while remaining > 0 {
            let n = cfg.batch_pairs.min(remaining);
            remaining -= n;
            let mut lefts = Vec::with_capacity(n);
            let mut rights = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..pool.len());
                let mut j = rng.gen_range(0..pool.len());
                if i == j {
                    j = (j + 1) % pool.len();
                }
                lefts.push(pool[i].clone());
                rights.push(pool[j].clone());
                labels.push((measure.distance(&pool[i], &pool[j]) / sigma) as f32);
            }
            let mut tape = Tape::new();
            let pairs = {
                let mut f = Fwd::new(&mut tape, model.store(), rng, true);
                let ea = model.encode_on_tape(&mut f, &lefts);
                let eb = model.encode_on_tape(&mut f, &rights);
                let diff = f.tape.sub(ea, eb);
                let absd = f.tape.abs_op(diff);
                let ones = f.input(Tensor::ones(Shape::d2(d, 1)));
                let l1 = f.tape.matmul(absd, ones, false, false);
                let target = f.input(Tensor::from_vec(labels, Shape::d2(n, 1)));
                let err = f.tape.sub(l1, target);
                let sq = f.tape.mul(err, err);
                let loss = f.tape.mean_all(sq);
                total += f.tape.value(loss).data()[0];
                steps += 1;
                let grads = f.tape.backward(loss);
                grads.into_param_grads(f.tape)
            };
            model.store_mut().accumulate(pairs);
            model.store_mut().clip_grad_norm(5.0);
            opt.step(model.store_mut());
        }
        losses.push(total / steps.max(1) as f32);
    }
    losses
}
