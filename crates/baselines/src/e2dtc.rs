//! E2DTC \[14\]: end-to-end deep trajectory clustering.
//!
//! E2DTC uses a t2vec backbone plus self-training clustering losses. We
//! reproduce that structure: the same seq2seq denoising pre-training as
//! t2vec, followed by epochs that add a *cluster-compactness* auxiliary
//! loss — embeddings are pulled toward their nearest of `k` centroids
//! (re-estimated by k-means between epochs). This is a simplification of
//! the DEC-style KL self-training (documented in DESIGN.md §4); it
//! reproduces the paper's observed behaviour that E2DTC tracks t2vec
//! closely while being slightly worse for pure similarity search (its
//! objective optimises cluster structure, not ranking).

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use crate::t2vec::{T2Vec, T2VecConfig};
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_nn::{Adam, Fwd, ParamStore};
use trajcl_tensor::{Shape, Tape, Tensor, Var};

/// E2DTC: t2vec backbone + clustering self-training.
pub struct E2dtc {
    backbone: T2Vec,
    centroids: Tensor,
    k: usize,
}

/// E2DTC training configuration.
#[derive(Debug, Clone)]
pub struct E2dtcConfig {
    /// Backbone (t2vec) configuration.
    pub backbone: T2VecConfig,
    /// Number of clusters.
    pub clusters: usize,
    /// Clustering self-training epochs (after backbone pre-training).
    pub cluster_epochs: usize,
    /// Weight of the compactness loss.
    pub cluster_weight: f32,
}

impl Default for E2dtcConfig {
    fn default() -> Self {
        E2dtcConfig {
            backbone: T2VecConfig::default(),
            clusters: 8,
            cluster_epochs: 2,
            cluster_weight: 0.1,
        }
    }
}

impl E2dtc {
    /// Builds an untrained model.
    pub fn new(featurizer: TokenFeaturizer, dim: usize, k: usize, rng: &mut impl Rng) -> Self {
        let backbone = T2Vec::new(featurizer, dim, rng);
        let centroids = Tensor::zeros(Shape::d2(k.max(1), dim));
        E2dtc {
            backbone,
            centroids,
            k: k.max(1),
        }
    }

    /// Current cluster centroids `(k, dim)`.
    pub fn centroids(&self) -> &Tensor {
        &self.centroids
    }

    /// Full training: t2vec pre-training, then clustering self-training.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        cfg: &E2dtcConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut losses = self.backbone.train(pool, &cfg.backbone, rng);
        for _ in 0..cfg.cluster_epochs {
            self.update_centroids(pool, rng);
            let mut opt = Adam::new(cfg.backbone.lr * 0.5);
            let mut total = 0.0;
            let mut n = 0;
            for chunk in pool.chunks(cfg.backbone.batch_size) {
                if chunk.is_empty() {
                    continue;
                }
                // Reconstruction step keeps the embedding space anchored...
                total += self
                    .backbone
                    .train_step(chunk, &mut opt, &cfg.backbone, rng);
                // ...then the compactness step sharpens cluster structure.
                total += cfg.cluster_weight
                    * self.compactness_step(chunk, &mut opt, cfg.cluster_weight, rng);
                n += 1;
            }
            losses.push(total / n.max(1) as f32);
        }
        losses
    }

    /// K-means (Lloyd) re-estimation of centroids from current embeddings.
    fn update_centroids(&mut self, pool: &[Trajectory], rng: &mut impl Rng) {
        let emb = self.backbone.embed(pool, rng);
        let d = self.dim();
        let n = emb.shape().rows();
        let k = self.k.min(n);
        // Initialise with distinct random rows.
        let mut centers: Vec<Vec<f32>> = (0..k).map(|i| emb.row(i * n / k).to_vec()).collect();
        for _iter in 0..8 {
            let mut sums = vec![vec![0.0f32; d]; k];
            let mut counts = vec![0usize; k];
            for r in 0..n {
                let row = emb.row(r);
                let c = nearest(&centers, row);
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(row) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (ctr, s) in centers[c].iter_mut().zip(&sums[c]) {
                        *ctr = s / counts[c] as f32;
                    }
                }
            }
        }
        let mut flat = Vec::with_capacity(k * d);
        for c in centers {
            flat.extend(c);
        }
        self.centroids = Tensor::from_vec(flat, Shape::d2(k, d));
    }

    /// One gradient step on `mean ||z - c(z)||²` with assigned centroids as
    /// constants.
    fn compactness_step(
        &mut self,
        trajs: &[Trajectory],
        opt: &mut Adam,
        weight: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        let d = self.dim();
        // Assignments from the current (constant) embeddings.
        let emb = self.backbone.embed(trajs, rng);
        let centers: Vec<Vec<f32>> = (0..self.centroids.shape().rows())
            .map(|i| self.centroids.row(i).to_vec())
            .collect();
        let mut assigned = Tensor::zeros(Shape::d2(trajs.len(), d));
        for r in 0..trajs.len() {
            let c = nearest(&centers, emb.row(r));
            assigned.data_mut()[r * d..(r + 1) * d].copy_from_slice(&centers[c]);
        }
        let mut tape = Tape::new();
        let loss_val;
        let pairs = {
            let mut f = Fwd::new(&mut tape, self.backbone.store(), rng, true);
            let z = self.backbone.encode_on_tape(&mut f, trajs);
            let target = f.input(assigned);
            let diff = f.tape.sub(z, target);
            let sq = f.tape.mul(diff, diff);
            let mse = f.tape.mean_all(sq);
            let loss = f.tape.scale(mse, weight);
            loss_val = f.tape.value(loss).data()[0];
            let grads = f.tape.backward(loss);
            grads.into_param_grads(f.tape)
        };
        self.backbone.store_mut().accumulate(pairs);
        self.backbone.store_mut().clip_grad_norm(5.0);
        opt.step(self.backbone.store_mut());
        loss_val
    }
}

fn nearest(centers: &[Vec<f32>], row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d: f32 = center.iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

impl TrajectoryEncoder for E2dtc {
    fn name(&self) -> &'static str {
        "E2DTC"
    }

    fn dim(&self) -> usize {
        TrajectoryEncoder::dim(&self.backbone)
    }

    fn store(&self) -> &ParamStore {
        self.backbone.store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        self.backbone.store_mut()
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        self.backbone.encode_on_tape(f, trajs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};

    fn setup() -> (E2dtc, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let model = E2dtc::new(tf, 16, 4, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..12)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..12).map(|i| Point::new(i as f64 * 150.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn trains_and_embeds() {
        let (mut model, pool, mut rng) = setup();
        let cfg = E2dtcConfig {
            backbone: T2VecConfig {
                dim: 16,
                epochs: 1,
                batch_size: 6,
                ..Default::default()
            },
            clusters: 3,
            cluster_epochs: 1,
            cluster_weight: 0.1,
        };
        let losses = model.train(&pool, &cfg, &mut rng);
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| l.is_finite()));
        let e = model.embed(&pool[..4], &mut rng);
        assert_eq!(e.shape(), Shape::d2(4, 16));
        // Centroids were estimated.
        assert!(model.centroids().frobenius_norm() > 0.0);
    }

    #[test]
    fn nearest_assignment_is_correct() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(nearest(&centers, &[1.0, 1.0]), 0);
        assert_eq!(nearest(&centers, &[9.0, 9.5]), 1);
    }
}
