//! T3S \[20\]: effective representation learning for trajectory similarity.
//!
//! T3S combines a vanilla LSTM over raw coordinates with vanilla
//! self-attention over grid-cell tokens, blending the two views with a
//! learnable weight λ. Trained supervised against a heuristic measure via
//! pair regression ([`crate::supervised`]).

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_nn::attention::{add_positional, attention_mask_bias, sinusoidal_pe};
use trajcl_nn::{
    run_lstm, Adam, Embedding, Fwd, Linear, LstmCell, ParamStore, TransformerEncoderLayer,
};
use trajcl_tensor::{Tensor, Var};

pub use crate::supervised::SupervisedConfig as T3sConfig;

/// T3S model.
pub struct T3s {
    store: ParamStore,
    cell_emb: Embedding,
    attn: TransformerEncoderLayer,
    coord_proj: Linear,
    lstm: LstmCell,
    lambda: trajcl_nn::ParamId,
    featurizer: TokenFeaturizer,
    dim: usize,
    heads: usize,
}

impl T3s {
    /// Builds an untrained T3S of width `dim` with `heads` attention heads.
    pub fn new(featurizer: TokenFeaturizer, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let cell_emb = Embedding::new(&mut store, "t3s.cells", featurizer.vocab(), dim, rng);
        let attn =
            TransformerEncoderLayer::new(&mut store, "t3s.attn", dim, heads, dim * 2, 0.1, rng);
        let coord_proj = Linear::new(&mut store, "t3s.coord", 2, dim, rng);
        let lstm = LstmCell::new(&mut store, "t3s.lstm", dim, dim, rng);
        let lambda = store.add("t3s.lambda", Tensor::scalar(0.5));
        T3s {
            store,
            cell_emb,
            attn,
            coord_proj,
            lstm,
            lambda,
            featurizer,
            dim,
            heads,
        }
    }

    /// Supervised training via pair regression.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        measure: trajcl_measures::HeuristicMeasure,
        cfg: &T3sConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        crate::supervised::train_pair_regression(self, pool, measure, cfg, rng)
    }

    /// Convenience trainer with a fresh Adam (used by harness smoke paths).
    pub fn quick_opt(&self, lr: f32) -> Adam {
        Adam::new(lr)
    }
}

impl TrajectoryEncoder for T3s {
    fn name(&self) -> &'static str {
        "T3S"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let (b, l) = (batch.lens.len(), batch.seq_len);
        // Attention view over cell tokens.
        let emb = self.cell_emb.forward_seq(f, &batch.cells, b, l);
        let pe = sinusoidal_pe(l, self.dim);
        let x = add_positional(f, emb, &pe);
        let mask = f.input(attention_mask_bias(&batch.lens, l, self.heads));
        let (attended, _) = self.attn.forward(f, x, Some(mask));
        let attn_pooled = f.tape.mean_pool_masked(attended, &batch.lens);
        // LSTM view over raw coordinates.
        let coords = f.input(batch.coords.clone());
        let coord_emb = self.coord_proj.forward(f, coords);
        let (_, lstm_state) = run_lstm(f, &self.lstm, coord_emb, &batch.lens);
        // Blend: λ·attention + (1-λ)·LSTM.
        let lam = f.p(self.lambda);
        let a_part = f.tape.mul_scalar_var(attn_pooled, lam);
        let l_scaled = f.tape.mul_scalar_var(lstm_state, lam);
        let l_part = f.tape.sub(lstm_state, l_scaled); // (1-λ)·state
        f.tape.add(a_part, l_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};
    use trajcl_measures::HeuristicMeasure;
    use trajcl_tensor::Shape;

    fn setup() -> (T3s, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(4);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let model = T3s::new(tf, 16, 2, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..10)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..12).map(|i| Point::new(i as f64 * 160.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn embeds_and_blends_views() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        assert!(e.all_finite());
    }

    #[test]
    fn supervised_training_reduces_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = T3sConfig {
            pairs_per_epoch: 48,
            batch_pairs: 8,
            epochs: 3,
            lr: 2e-3,
        };
        let losses = model.train(&pool, HeuristicMeasure::Hausdorff, &cfg, &mut rng);
        assert_eq!(losses.len(), 3);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(
            losses[2] < losses[0],
            "regression loss should drop: {losses:?}"
        );
    }

    #[test]
    fn lambda_is_trainable() {
        let (mut model, pool, mut rng) = setup();
        let before = model.store.value(model.lambda).data()[0];
        let cfg = T3sConfig {
            pairs_per_epoch: 32,
            batch_pairs: 8,
            epochs: 2,
            lr: 5e-3,
        };
        model.train(&pool, HeuristicMeasure::Frechet, &cfg, &mut rng);
        let after = model.store.value(model.lambda).data()[0];
        assert_ne!(before, after, "λ should receive updates");
    }
}
