//! Traj2SimVec \[19\]: trajectory similarity learning with auxiliary
//! supervision.
//!
//! The original accelerates NeuTraj training with pair sampling and adds a
//! sub-trajectory auxiliary loss. We reproduce the backbone — an LSTM over
//! raw coordinates trained by pairwise distance regression — and the
//! sampling-based training; the sub-trajectory auxiliary term is omitted
//! (DESIGN.md §4), consistent with its modest reported contribution.

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_nn::{run_lstm, Fwd, Linear, LstmCell, ParamStore};
use trajcl_tensor::Var;

pub use crate::supervised::SupervisedConfig as Traj2SimVecConfig;

/// Traj2SimVec model: coordinate LSTM encoder.
pub struct Traj2SimVec {
    store: ParamStore,
    coord_proj: Linear,
    lstm: LstmCell,
    featurizer: TokenFeaturizer,
    dim: usize,
}

impl Traj2SimVec {
    /// Builds an untrained model of width `dim`.
    pub fn new(featurizer: TokenFeaturizer, dim: usize, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let coord_proj = Linear::new(&mut store, "t2sv.coord", 2, dim, rng);
        let lstm = LstmCell::new(&mut store, "t2sv.lstm", dim, dim, rng);
        Traj2SimVec {
            store,
            coord_proj,
            lstm,
            featurizer,
            dim,
        }
    }

    /// Supervised training via pair regression.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        measure: trajcl_measures::HeuristicMeasure,
        cfg: &Traj2SimVecConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        crate::supervised::train_pair_regression(self, pool, measure, cfg, rng)
    }
}

impl TrajectoryEncoder for Traj2SimVec {
    fn name(&self) -> &'static str {
        "Traj2SimVec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let coords = f.input(batch.coords.clone());
        let emb = self.coord_proj.forward(f, coords);
        let (_, state) = run_lstm(f, &self.lstm, emb, &batch.lens);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};
    use trajcl_measures::HeuristicMeasure;
    use trajcl_tensor::Shape;

    fn setup() -> (Traj2SimVec, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let model = Traj2SimVec::new(tf, 16, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..10)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..12).map(|i| Point::new(i as f64 * 160.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn embeds_with_shape() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..4], &mut rng);
        assert_eq!(e.shape(), Shape::d2(4, 16));
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = Traj2SimVecConfig {
            pairs_per_epoch: 48,
            batch_pairs: 8,
            epochs: 3,
            lr: 2e-3,
        };
        let losses = model.train(&pool, HeuristicMeasure::Hausdorff, &cfg, &mut rng);
        assert!(losses[2] < losses[0], "loss should drop: {losses:?}");
    }
}
