//! CSTRM \[13\]: contrastive self-supervised trajectory representation with
//! a *vanilla* multi-head self-attention encoder over grid-cell tokens.
//!
//! Key differences from TrajCL that the paper's experiments exercise:
//! CSTRM learns cell embeddings end-to-end (no grid-topology pre-training),
//! uses only coarse structural tokens (no spatial four-tuple branch), and
//! augments with point shifting + point masking. Its multi-view hinge loss
//! is replaced here by InfoNCE over in-batch negatives, the closest
//! standard objective (DESIGN.md §4).

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_data::{AugmentParams, Augmentation};
use trajcl_geo::Trajectory;
use trajcl_nn::attention::{add_positional, attention_mask_bias, sinusoidal_pe};
use trajcl_nn::{Adam, Embedding, Fwd, ParamStore, TransformerEncoderLayer};
use trajcl_tensor::{Tape, Var};

/// CSTRM model.
pub struct Cstrm {
    store: ParamStore,
    cell_emb: Embedding,
    layers: Vec<TransformerEncoderLayer>,
    featurizer: TokenFeaturizer,
    dim: usize,
    heads: usize,
}

/// CSTRM training configuration.
#[derive(Debug, Clone)]
pub struct CstrmConfig {
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// InfoNCE temperature.
    pub temperature: f32,
}

impl Default for CstrmConfig {
    fn default() -> Self {
        CstrmConfig {
            dim: 32,
            heads: 4,
            layers: 2,
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            temperature: 0.1,
        }
    }
}

impl Cstrm {
    /// Builds an untrained CSTRM. Note the trainable `(vocab, dim)` cell
    /// table — for country-scale grids this is exactly the parameter blow-up
    /// that makes CSTRM run out of memory on Germany in the paper.
    pub fn new(featurizer: TokenFeaturizer, cfg: &CstrmConfig, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let cell_emb = Embedding::new(&mut store, "cstrm.cells", featurizer.vocab(), cfg.dim, rng);
        let layers = (0..cfg.layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    &mut store,
                    &format!("cstrm.layer{i}"),
                    cfg.dim,
                    cfg.heads,
                    cfg.dim * 2,
                    0.1,
                    rng,
                )
            })
            .collect();
        Cstrm {
            store,
            cell_emb,
            layers,
            featurizer,
            dim: cfg.dim,
            heads: cfg.heads,
        }
    }

    /// Estimated parameter count (used to emulate the Germany OOM check).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    fn encode_batch(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let emb = self
            .cell_emb
            .forward_seq(f, &batch.cells, batch.lens.len(), batch.seq_len);
        let pe = sinusoidal_pe(batch.seq_len, self.dim);
        let mut x = add_positional(f, emb, &pe);
        let mask = f.input(attention_mask_bias(&batch.lens, batch.seq_len, self.heads));
        for layer in &self.layers {
            let (xn, _) = layer.forward(f, x, Some(mask));
            x = xn;
        }
        f.tape.mean_pool_masked(x, &batch.lens)
    }

    /// One contrastive step over two views (shift + mask, CSTRM's
    /// augmentations) with in-batch negatives.
    pub fn train_step(
        &mut self,
        trajs: &[Trajectory],
        opt: &mut Adam,
        cfg: &CstrmConfig,
        rng: &mut impl Rng,
    ) -> f32 {
        let params = AugmentParams::default();
        let v1: Vec<Trajectory> = trajs
            .iter()
            .map(|t| Augmentation::PointShift.apply(t, &params, rng))
            .collect();
        let v2: Vec<Trajectory> = trajs
            .iter()
            .map(|t| Augmentation::PointMask.apply(t, &params, rng))
            .collect();
        let mut tape = Tape::new();
        let loss_val;
        {
            let mut f = Fwd::new(&mut tape, &self.store, rng, true);
            let z1 = self.encode_batch(&mut f, &v1);
            let z1 = f.tape.l2_normalize_rows(z1);
            let z2 = self.encode_batch(&mut f, &v2);
            let z2 = f.tape.l2_normalize_rows(z2);
            // In-batch InfoNCE: logits[i][j] = z1_i · z2_j, target = diagonal.
            let logits = f.tape.matmul(z1, z2, false, true);
            let scaled = f.tape.scale(logits, 1.0 / cfg.temperature);
            let targets: Vec<usize> = (0..trajs.len()).collect();
            let loss = f.tape.cross_entropy(scaled, &targets);
            loss_val = f.tape.value(loss).data()[0];
            let grads = f.tape.backward(loss);
            self.store.accumulate(grads.into_param_grads(f.tape));
        }
        self.store.clip_grad_norm(5.0);
        opt.step(&mut self.store);
        loss_val
    }

    /// Trains for `cfg.epochs`; returns per-epoch mean losses.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        cfg: &CstrmConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        let mut opt = Adam::new(cfg.lr);
        let mut losses = Vec::new();
        for _ in 0..cfg.epochs {
            let mut total = 0.0;
            let mut n = 0;
            for chunk in pool.chunks(cfg.batch_size) {
                if chunk.len() < 2 {
                    continue;
                }
                total += self.train_step(chunk, &mut opt, cfg, rng);
                n += 1;
            }
            losses.push(total / n.max(1) as f32);
        }
        losses
    }
}

impl TrajectoryEncoder for Cstrm {
    fn name(&self) -> &'static str {
        "CSTRM"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        self.encode_batch(f, trajs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};
    use trajcl_tensor::Shape;

    fn setup() -> (Cstrm, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let cfg = CstrmConfig {
            dim: 16,
            heads: 2,
            layers: 1,
            ..Default::default()
        };
        let model = Cstrm::new(tf, &cfg, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..12)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..14).map(|i| Point::new(i as f64 * 140.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn trains_with_finite_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = CstrmConfig {
            dim: 16,
            heads: 2,
            layers: 1,
            epochs: 2,
            batch_size: 6,
            ..Default::default()
        };
        let losses = model.train(&pool, &cfg, &mut rng);
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn embedding_shape_and_vocab_scaling() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        // The trainable cell table dominates parameters for big grids —
        // the Germany-OOM mechanism.
        let table_params = model.featurizer.vocab() * 16;
        assert!(model.num_params() > table_params);
    }
}
