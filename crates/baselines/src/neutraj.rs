//! NEUTRAJ \[18\]: seed-guided neural metric learning with a spatial memory.
//!
//! The paper omits NEUTRAJ from its tables ("shown to be outperformed by
//! these methods already") but it is the lineage root of the supervised
//! approximators, so we include it as an extension baseline. Architecture:
//! an LSTM over raw coordinates whose per-step input is enriched by a
//! *spatial memory* read — a trainable table indexed by the grid cell of
//! the current point (the published spatial-attention memory reduced to
//! its gather form). Trained by pair regression like its descendants.

use crate::common::{TokenFeaturizer, TrajectoryEncoder};
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_nn::{run_lstm, Embedding, Fwd, Linear, LstmCell, ParamStore};
use trajcl_tensor::Var;

pub use crate::supervised::SupervisedConfig as NeutrajConfig;

/// NEUTRAJ model.
pub struct Neutraj {
    store: ParamStore,
    coord_proj: Linear,
    memory: Embedding,
    lstm: LstmCell,
    featurizer: TokenFeaturizer,
    dim: usize,
}

impl Neutraj {
    /// Builds an untrained NEUTRAJ of width `dim`.
    pub fn new(featurizer: TokenFeaturizer, dim: usize, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let coord_proj = Linear::new(&mut store, "neutraj.coord", 2, dim, rng);
        let memory = Embedding::new(&mut store, "neutraj.memory", featurizer.vocab(), dim, rng);
        let lstm = LstmCell::new(&mut store, "neutraj.lstm", dim, dim, rng);
        Neutraj {
            store,
            coord_proj,
            memory,
            lstm,
            featurizer,
            dim,
        }
    }

    /// Supervised training via pair regression.
    pub fn train(
        &mut self,
        pool: &[Trajectory],
        measure: trajcl_measures::HeuristicMeasure,
        cfg: &NeutrajConfig,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        crate::supervised::train_pair_regression(self, pool, measure, cfg, rng)
    }
}

impl TrajectoryEncoder for Neutraj {
    fn name(&self) -> &'static str {
        "NEUTRAJ"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn encode_on_tape(&self, f: &mut Fwd, trajs: &[Trajectory]) -> Var {
        let batch = self.featurizer.featurize(trajs).expect("non-empty batch");
        let (b, l) = (batch.lens.len(), batch.seq_len);
        let coords = f.input(batch.coords.clone());
        let coord_emb = self.coord_proj.forward(f, coords);
        // Spatial memory read: one gathered vector per point, summed into
        // the coordinate projection.
        let mem = self.memory.forward_seq(f, &batch.cells, b, l);
        let enriched = f.tape.add(coord_emb, mem);
        let (_, state) = run_lstm(f, &self.lstm, enriched, &batch.lens);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};
    use trajcl_measures::HeuristicMeasure;
    use trajcl_tensor::Shape;

    fn setup() -> (Neutraj, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(8);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let tf = TokenFeaturizer::new(region, 200.0, 32);
        let model = Neutraj::new(tf, 16, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..10)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..12).map(|i| Point::new(i as f64 * 160.0, y)).collect()
            })
            .collect();
        (model, pool, rng)
    }

    #[test]
    fn embeds_with_memory_contribution() {
        let (model, pool, mut rng) = setup();
        let e = model.embed(&pool[..3], &mut rng);
        assert_eq!(e.shape(), Shape::d2(3, 16));
        assert!(e.all_finite());
    }

    #[test]
    fn memory_table_receives_gradients() {
        let (mut model, pool, mut rng) = setup();
        let cfg = NeutrajConfig {
            pairs_per_epoch: 16,
            batch_pairs: 8,
            epochs: 1,
            lr: 2e-3,
        };
        model.train(&pool, HeuristicMeasure::Hausdorff, &cfg, &mut rng);
        // After one epoch the memory table must have moved from init.
        let id = model.store.ids_where(|n| n == "neutraj.memory.table")[0];
        let mut fresh_rng = StdRng::seed_from_u64(8);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let fresh = Neutraj::new(TokenFeaturizer::new(region, 200.0, 32), 16, &mut fresh_rng);
        let fresh_id = fresh.store.ids_where(|n| n == "neutraj.memory.table")[0];
        assert!(
            !model
                .store
                .value(id)
                .approx_eq(fresh.store.value(fresh_id), 0.0),
            "spatial memory was never updated"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, pool, mut rng) = setup();
        let cfg = NeutrajConfig {
            pairs_per_epoch: 48,
            batch_pairs: 8,
            epochs: 3,
            lr: 2e-3,
        };
        let losses = model.train(&pool, HeuristicMeasure::Hausdorff, &cfg, &mut rng);
        assert!(losses[2] < losses[0], "loss should drop: {losses:?}");
    }
}
