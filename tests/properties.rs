//! Cross-crate property-based tests (proptest): measure axioms,
//! augmentation invariants and grid/tensor laws that must hold for any
//! input, not just the unit-test fixtures.

use proptest::prelude::*;
use trajcl::data::{point_mask, truncate};
use trajcl::geo::{douglas_peucker, max_deviation, Bbox, Grid, Point, Trajectory};
use trajcl::measures::{dtw, edr, edwp, frechet, hausdorff};
use trajcl::tensor::{kernels, Shape, Tensor};

/// Strategy: a trajectory of 2..=40 points in a 10 km box.
fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0f64..10_000.0, 0.0f64..10_000.0), 2..40)
        .prop_map(|pts| Trajectory::from_xy(&pts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn measures_are_symmetric_and_nonnegative(a in arb_trajectory(), b in arb_trajectory()) {
        for (name, d_ab, d_ba) in [
            ("hausdorff", hausdorff(&a, &b), hausdorff(&b, &a)),
            ("frechet", frechet(&a, &b), frechet(&b, &a)),
            ("dtw", dtw(&a, &b), dtw(&b, &a)),
            ("edr", edr(&a, &b, 50.0), edr(&b, &a, 50.0)),
            ("edwp", edwp(&a, &b), edwp(&b, &a)),
        ] {
            prop_assert!(d_ab >= 0.0, "{name} negative: {d_ab}");
            let scale = d_ab.abs().max(1.0);
            prop_assert!(((d_ab - d_ba) / scale).abs() < 1e-6,
                "{name} asymmetric: {d_ab} vs {d_ba}");
        }
    }

    #[test]
    fn measures_identity_is_zero(a in arb_trajectory()) {
        // Segment-based Hausdorff projects onto `lerp`-interpolated points,
        // which are not bit-exact endpoints; allow FP dust.
        prop_assert!(hausdorff(&a, &a) < 1e-6);
        prop_assert!(frechet(&a, &a) == 0.0);
        prop_assert!(dtw(&a, &a) == 0.0);
        prop_assert!(edr(&a, &a, 1.0) == 0.0);
        prop_assert!(edwp(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn hausdorff_lower_bounds_frechet(a in arb_trajectory(), b in arb_trajectory()) {
        // The continuous Hausdorff (free matching) can never exceed the
        // discrete Fréchet (order-constrained matching over the same points).
        prop_assert!(hausdorff(&a, &b) <= frechet(&a, &b) + 1e-9);
    }

    #[test]
    fn douglas_peucker_respects_epsilon(t in arb_trajectory(), eps in 1.0f64..500.0) {
        let s = douglas_peucker(&t, eps);
        prop_assert!(s.len() >= 2 || t.len() < 3);
        prop_assert!(s.len() <= t.len());
        prop_assert!(max_deviation(&t, &s) <= eps + 1e-9);
        // Endpoints preserved.
        prop_assert_eq!(s.point(0), t.point(0));
        prop_assert_eq!(s.point(s.len() - 1), t.point(t.len() - 1));
    }

    #[test]
    fn masking_yields_ordered_subsequence(t in arb_trajectory(), rho in 0.0f64..0.9, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = point_mask(&t, rho, &mut rng);
        prop_assert!(!m.is_empty());
        prop_assert!(m.len() <= t.len());
        let mut cursor = 0usize;
        for p in m.points() {
            let found = t.points()[cursor..].iter().position(|q| q == p);
            prop_assert!(found.is_some(), "not a subsequence");
            cursor += found.unwrap() + 1;
        }
    }

    #[test]
    fn truncation_is_contiguous_window(t in arb_trajectory(), rho in 0.1f64..1.0, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w = truncate(&t, rho, &mut rng);
        prop_assert!(!w.is_empty());
        let start = t.points().iter().position(|p| *p == w.point(0));
        prop_assert!(start.is_some());
        let start = start.unwrap();
        for (i, p) in w.points().iter().enumerate() {
            prop_assert_eq!(*p, t.point(start + i));
        }
    }

    #[test]
    fn grid_cell_round_trip(x in 0.0f64..9_999.0, y in 0.0f64..9_999.0) {
        let grid = Grid::new(
            Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0)),
            100.0,
        );
        let cell = grid.cell_of(&Point::new(x, y));
        prop_assert!((cell as usize) < grid.num_cells());
        // The cell's center maps back to the same cell.
        prop_assert_eq!(grid.cell_of(&grid.center(cell)), cell);
    }

    #[test]
    fn softmax_rows_are_distributions(data in prop::collection::vec(-30.0f32..30.0, 12)) {
        let mut out = vec![0.0f32; 12];
        kernels::softmax_rows(&data, 4, &mut out);
        for row in out.chunks(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn matmul_identity_law(vals in prop::collection::vec(-10.0f32..10.0, 16)) {
        let a = Tensor::from_vec(vals, Shape::d2(4, 4));
        let mut eye = Tensor::zeros(Shape::d2(4, 4));
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let prod = kernels::matmul(&a, &eye, false, false);
        prop_assert!(prod.approx_eq(&a, 1e-5));
        // (A·I)^T == A^T via transpose flags.
        let at = kernels::matmul(&eye, &a, false, true);
        prop_assert!(at.approx_eq(&a.transpose_last2(), 1e-5));
    }

    #[test]
    fn edwp_zero_across_resampling(n in 2usize..8) {
        // Same straight geometry sampled at different densities costs ~0.
        let sparse = Trajectory::from_xy(&[(0.0, 0.0), (1_000.0, 0.0)]);
        let dense: Vec<(f64, f64)> = (0..=n).map(|i| (1_000.0 * i as f64 / n as f64, 0.0)).collect();
        let dense = Trajectory::from_xy(&dense);
        prop_assert!(edwp(&sparse, &dense) < 1e-6);
    }
}
