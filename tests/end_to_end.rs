//! Cross-crate integration tests: the full pipeline from synthetic data
//! through contrastive training to similarity queries and fine-tuning.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl::core::{
    build_featurizer, finetune, l1_distances, train, EncoderVariant, Featurizer, FinetuneConfig,
    FinetuneScope, MocoState, TrajClConfig,
};
use trajcl::data::{
    downsample, hit_ratio, mean_rank, Dataset, DatasetProfile, QueryProtocol, Splits,
};
use trajcl::index::{IvfIndex, Metric};
use trajcl::measures::HeuristicMeasure;
use trajcl::nn::{ParamStore, StepDecay};

struct Pipeline {
    featurizer: Featurizer,
    splits: Splits,
    moco: MocoState,
    rng: StdRng,
}

/// Trains a tiny TrajCL once for all tests in this file (they share it via
/// `OnceLock` to keep the suite fast).
fn pipeline() -> &'static Pipeline {
    use std::sync::OnceLock;
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(99);
        let dataset = Dataset::generate(DatasetProfile::porto(), 420, 17);
        let splits = dataset.split(120, &mut rng);
        let cfg = TrajClConfig::test_default();
        let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);
        let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
        let report = train(
            &mut moco,
            &featurizer,
            &splits.train,
            &StepDecay::trajcl_default(),
            &mut rng,
        );
        assert!(report.epochs_run >= 1);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        Pipeline {
            featurizer,
            splits,
            moco,
            rng,
        }
    })
}

#[test]
fn trained_model_beats_random_ranking() {
    let p = pipeline();
    let mut rng = p.rng.clone();
    let proto = QueryProtocol::build(&p.splits.test, 15, 100, &mut rng);
    let q = p.moco.online.embed(&p.featurizer, &proto.queries);
    let d = p.moco.online.embed(&p.featurizer, &proto.database);
    let mr = mean_rank(
        &l1_distances(&q, &d),
        proto.database.len(),
        &proto.ground_truth,
    );
    // Random ranking would give ~ |D|/2 = 50.
    assert!(
        mr < 10.0,
        "trained TrajCL mean rank {mr} not far from random"
    );
}

#[test]
fn model_is_robust_to_downsampling() {
    let p = pipeline();
    let mut rng = p.rng.clone();
    let proto = QueryProtocol::build(&p.splits.test, 15, 100, &mut rng);
    let mut drng = StdRng::seed_from_u64(5);
    let degraded = proto.degrade(|t| downsample(t, 0.3, &mut drng));
    let q = p.moco.online.embed(&p.featurizer, &degraded.queries);
    let d = p.moco.online.embed(&p.featurizer, &degraded.database);
    let mr = mean_rank(
        &l1_distances(&q, &d),
        degraded.database.len(),
        &degraded.ground_truth,
    );
    assert!(mr < 25.0, "downsampled mean rank {mr} collapsed to random");
}

#[test]
fn embeddings_round_trip_through_serialization() {
    let p = pipeline();
    let trajs = &p.splits.test[..5];
    let before = p.moco.online.embed(&p.featurizer, trajs);

    let bytes = p.moco.online.store.to_bytes();
    let restored = ParamStore::from_bytes(&bytes).expect("valid serialization");
    let mut clone = p.moco.online.clone();
    clone.store.copy_values_from(&restored);
    let after = clone.embed(&p.featurizer, trajs);
    assert!(
        before.approx_eq(&after, 1e-6),
        "serialization changed the model's embeddings"
    );
}

#[test]
fn ivf_index_finds_planted_match() {
    let p = pipeline();
    let mut rng = p.rng.clone();
    let proto = QueryProtocol::build(&p.splits.test, 10, 80, &mut rng);
    let db_emb = p.moco.online.embed(&p.featurizer, &proto.database);
    let index = IvfIndex::build(&db_emb, 8, Metric::L1, &mut rng);
    let q_emb = p.moco.online.embed(&p.featurizer, &proto.queries);
    let mut hits_at_5 = 0;
    for (qi, &gt) in proto.ground_truth.iter().enumerate() {
        let knn = index.search(q_emb.row(qi), 5, index.nlist());
        if knn.iter().any(|(id, _)| *id as usize == gt) {
            hits_at_5 += 1;
        }
    }
    assert!(
        hits_at_5 >= 7,
        "only {hits_at_5}/10 planted matches in top-5 via the IVF index"
    );
}

#[test]
fn finetuning_tracks_hausdorff_better_than_raw() {
    let p = pipeline();
    let mut rng = p.rng.clone();
    let pool = &p.splits.downstream;
    let split = pool.len() * 7 / 10;
    // Budget sized so the regression reliably beats the raw encoder: with
    // very few pairs the comparison degenerates into seed luck.
    let cfg = FinetuneConfig {
        scope: FinetuneScope::AllLayers,
        pairs_per_epoch: 160,
        batch_pairs: 16,
        epochs: 5,
        lr: 2e-3,
    };
    let measure = HeuristicMeasure::Hausdorff;
    let est = finetune(
        &p.moco.online,
        &p.featurizer,
        &pool[..split],
        measure,
        &cfg,
        &mut rng,
    );

    let eval = &pool[split..];
    let nq = 4.min(eval.len() / 2);
    let (queries, database) = eval.split_at(nq);
    let true_d = trajcl::measures::pairwise_distances(queries, database, measure);

    let qe = est.embed(&p.featurizer, queries);
    let de = est.embed(&p.featurizer, database);
    let tuned = l1_distances(&qe, &de);
    let qr = p.moco.online.embed(&p.featurizer, queries);
    let dr = p.moco.online.embed(&p.featurizer, database);
    let raw = l1_distances(&qr, &dr);

    let db = database.len();
    let (mut hr_t, mut hr_r) = (0.0, 0.0);
    for q in 0..nq {
        hr_t += hit_ratio(
            &true_d[q * db..(q + 1) * db],
            &tuned[q * db..(q + 1) * db],
            5,
        );
        hr_r += hit_ratio(&true_d[q * db..(q + 1) * db], &raw[q * db..(q + 1) * db], 5);
    }
    assert!(
        hr_t >= hr_r - 1e-9,
        "fine-tuning reduced HR@5: tuned {hr_t} vs raw {hr_r}"
    );
}

#[test]
fn ablation_variants_all_train() {
    // The Fig. 7 variants must all be trainable end-to-end.
    let p = pipeline();
    for variant in [EncoderVariant::VanillaMsm, EncoderVariant::Concat] {
        let mut rng = StdRng::seed_from_u64(55);
        let cfg = TrajClConfig::test_default();
        let mut moco = MocoState::new(&cfg, variant, &mut rng);
        let report = train(
            &mut moco,
            &p.featurizer,
            &p.splits.train[..40],
            &StepDecay::trajcl_default(),
            &mut rng,
        );
        assert!(
            report.epoch_losses.iter().all(|l| l.is_finite()),
            "{} diverged",
            variant.name()
        );
    }
}
