//! The Fig. 1 scenario: k-nearest-neighbour trajectory queries, comparing
//! the heuristic Hausdorff measure with learned TrajCL embeddings — both
//! served through the unified engine API, with the segment-based Hausdorff
//! index as the exact-route accelerator reference.
//!
//! ```sh
//! cargo run --release --example knn_query
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl::core::TrajClConfig;
use trajcl::data::{Dataset, DatasetProfile};
use trajcl::engine::Engine;
use trajcl::index::SegmentHausdorffIndex;
use trajcl::measures::HeuristicMeasure;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    println!("preparing data + model...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 500, 1);
    let splits = dataset.split(150, &mut rng);
    let cfg = TrajClConfig::test_default();

    let db = splits.test.clone();
    let query = &splits.downstream[0];
    let k = 3;

    // Heuristic route: the exact measure behind the same Engine API
    // (database scan), plus the segment index as the specialised
    // accelerator it substitutes for.
    let t0 = Instant::now();
    let hausdorff_engine = Engine::builder()
        .heuristic(HeuristicMeasure::Hausdorff)
        .database(db.clone())
        .build()
        .expect("heuristic engine");
    let heur_build = t0.elapsed();
    let t0 = Instant::now();
    let hausdorff_knn = hausdorff_engine.knn(query, k).expect("heuristic knn");
    let heur_query = t0.elapsed();
    let t0 = Instant::now();
    let seg_index = SegmentHausdorffIndex::build(&db);
    let seg_build = t0.elapsed();
    let t0 = Instant::now();
    let seg_knn = seg_index.knn(query, k);
    let seg_query = t0.elapsed();

    // Learned route: train TrajCL, embed the database once, serve kNN from
    // an IVF index — one builder chain.
    let t0 = Instant::now();
    let trajcl_engine = Engine::builder()
        .train_trajcl_on(&dataset, &splits.train, &cfg, &mut rng)
        .expect("training")
        .database(db.clone())
        .ivf_index(16)
        .nprobe(4)
        .build()
        .expect("trajcl engine");
    let ivf_build = t0.elapsed();
    let t0 = Instant::now();
    let trajcl_knn = trajcl_engine.knn(query, k).expect("trajcl knn");
    let ivf_query = t0.elapsed();

    println!(
        "\nquery trajectory: {} points, {:.1} km",
        query.len(),
        query.length() / 1000.0
    );
    println!("\n{k}NN via Hausdorff engine (build {heur_build:?}, query {heur_query:?}):");
    for (rank, (id, d)) in hausdorff_knn.iter().enumerate() {
        let t = &db[*id as usize];
        println!(
            "  #{} db[{id}] dist={d:.0} m   ({} pts, {:.1} km)",
            rank + 1,
            t.len(),
            t.length() / 1000.0
        );
    }
    println!(
        "(segment-index reference: build {seg_build:?}, query {seg_query:?}, same ids: {})",
        seg_knn
            .iter()
            .map(|(i, _)| *i)
            .eq(hausdorff_knn.iter().map(|(i, _)| *i))
    );
    println!("\n{k}NN via TrajCL engine + IVF (train+build {ivf_build:?}, query {ivf_query:?}):");
    for (rank, (id, d)) in trajcl_knn.iter().enumerate() {
        let t = &db[*id as usize];
        println!(
            "  #{} db[{id}] L1={d:.3}       ({} pts, {:.1} km)",
            rank + 1,
            t.len(),
            t.length() / 1000.0
        );
    }
    let overlap = trajcl_knn
        .iter()
        .filter(|(i, _)| hausdorff_knn.iter().any(|(j, _)| i == j))
        .count();
    println!("\nresult overlap between the two measures: {overlap}/{k}");
    println!("(embedding kNN answers from the compact index; Hausdorff re-reads full geometry)");
}
