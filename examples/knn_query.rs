//! The Fig. 1 scenario: k-nearest-neighbour trajectory queries, comparing
//! the heuristic Hausdorff measure with learned TrajCL embeddings served
//! from an IVF index.
//!
//! ```sh
//! cargo run --release --example knn_query
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl::core::{build_featurizer, train, EncoderVariant, MocoState, TrajClConfig};
use trajcl::data::{Dataset, DatasetProfile};
use trajcl::index::{IvfIndex, Metric, SegmentHausdorffIndex};
use trajcl::nn::StepDecay;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    println!("preparing data + model...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 500, 1);
    let splits = dataset.split(150, &mut rng);
    let cfg = TrajClConfig::test_default();
    let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    train(&mut moco, &featurizer, &splits.train, &StepDecay::trajcl_default(), &mut rng);

    let db = &splits.test;
    let query = &splits.downstream[0];
    let k = 3;

    // Heuristic route: segment index + exact Hausdorff kNN.
    let t0 = Instant::now();
    let seg_index = SegmentHausdorffIndex::build(db);
    let seg_build = t0.elapsed();
    let t0 = Instant::now();
    let hausdorff_knn = seg_index.knn(query, k);
    let seg_query = t0.elapsed();

    // Learned route: embed database once, IVF index, embedding kNN.
    let t0 = Instant::now();
    let db_emb = moco.online.embed(&featurizer, db, &mut rng);
    let ivf = IvfIndex::build(&db_emb, 16, Metric::L1, &mut rng);
    let ivf_build = t0.elapsed();
    let t0 = Instant::now();
    let q_emb = moco.online.embed(&featurizer, std::slice::from_ref(query), &mut rng);
    let trajcl_knn = ivf.search(q_emb.row(0), k, 4);
    let ivf_query = t0.elapsed();

    println!("\nquery trajectory: {} points, {:.1} km", query.len(), query.length() / 1000.0);
    println!("\n{k}NN via Hausdorff + segment index (build {seg_build:?}, query {seg_query:?}):");
    for (rank, (id, d)) in hausdorff_knn.iter().enumerate() {
        let t = &db[*id as usize];
        println!(
            "  #{} db[{id}] dist={d:.0} m   ({} pts, {:.1} km)",
            rank + 1,
            t.len(),
            t.length() / 1000.0
        );
    }
    println!("\n{k}NN via TrajCL embeddings + IVF (build {ivf_build:?}, query {ivf_query:?}):");
    for (rank, (id, d)) in trajcl_knn.iter().enumerate() {
        let t = &db[*id as usize];
        println!(
            "  #{} db[{id}] L1={d:.3}       ({} pts, {:.1} km)",
            rank + 1,
            t.len(),
            t.length() / 1000.0
        );
    }
    let overlap = trajcl_knn
        .iter()
        .filter(|(i, _)| hausdorff_knn.iter().any(|(j, _)| i == j))
        .count();
    println!("\nresult overlap between the two measures: {overlap}/{k}");
    println!("(embedding kNN answers from the compact index; Hausdorff re-reads full geometry)");
}
