//! Robustness demo (the Tables IV/V story): degrade a query workload by
//! down-sampling and distortion and watch how the heuristic measures fall
//! apart while TrajCL keeps finding the planted ground-truth match.
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl::core::{build_featurizer, l1_distances, train, EncoderVariant, MocoState, TrajClConfig};
use trajcl::data::{distort, downsample, mean_rank, Dataset, DatasetProfile, QueryProtocol};
use trajcl::measures::{pairwise_distances, HeuristicMeasure};
use trajcl::nn::StepDecay;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    println!("training TrajCL on a Porto-like dataset...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 500, 3);
    let splits = dataset.split(150, &mut rng);
    let cfg = TrajClConfig::test_default();
    let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    train(&mut moco, &featurizer, &splits.train, &StepDecay::trajcl_default(), &mut rng);

    let base = QueryProtocol::build(&splits.test, 20, 120, &mut rng);
    let mut drng = StdRng::seed_from_u64(32);
    let settings: Vec<(&str, QueryProtocol)> = vec![
        ("clean", base.clone()),
        ("down-sampled ρs=0.4", base.degrade(|t| downsample(t, 0.4, &mut drng))),
        ("distorted ρd=0.4", base.degrade(|t| distort(t, 0.4, 100.0, 0.5, &mut drng))),
    ];

    println!("\nmean rank of the planted match (1.0 = perfect, db = 120):");
    println!("{:24} {:>10} {:>10} {:>10}", "", "Hausdorff", "EDR", "TrajCL");
    for (name, proto) in &settings {
        let h = {
            let d = pairwise_distances(&proto.queries, &proto.database, HeuristicMeasure::Hausdorff);
            mean_rank(&d, proto.database.len(), &proto.ground_truth)
        };
        let e = {
            let d = pairwise_distances(&proto.queries, &proto.database, HeuristicMeasure::Edr(100.0));
            mean_rank(&d, proto.database.len(), &proto.ground_truth)
        };
        let t = {
            let q = moco.online.embed(&featurizer, &proto.queries, &mut rng);
            let db = moco.online.embed(&featurizer, &proto.database, &mut rng);
            mean_rank(&l1_distances(&q, &db), proto.database.len(), &proto.ground_truth)
        };
        println!("{name:24} {h:>10.2} {e:>10.2} {t:>10.2}");
    }
    println!("\n(the contrastive views — masking & truncation — are exactly what make");
    println!(" TrajCL stable under missing and shifted points; see paper §IV-A)");
}
