//! Robustness demo (the Tables IV/V story): degrade a query workload by
//! down-sampling and distortion and watch how the heuristic measures fall
//! apart while TrajCL keeps finding the planted ground-truth match. Both
//! measure families run through the unified engine API.
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl::core::{l1_distances, TrajClConfig};
use trajcl::data::{distort, downsample, mean_rank, Dataset, DatasetProfile, QueryProtocol};
use trajcl::engine::Engine;
use trajcl::measures::HeuristicMeasure;

/// Mean rank of the planted matches under any engine backend.
fn engine_mean_rank(engine: &Engine, proto: &QueryProtocol) -> f64 {
    if engine.backend().dim() > 0 {
        let q = engine.embed_all(&proto.queries).expect("embed queries");
        let d = engine.embed_all(&proto.database).expect("embed database");
        mean_rank(
            &l1_distances(&q, &d),
            proto.database.len(),
            &proto.ground_truth,
        )
    } else {
        let dbn = proto.database.len();
        let mut dists = Vec::with_capacity(proto.queries.len() * dbn);
        for q in &proto.queries {
            for t in &proto.database {
                dists.push(engine.distance(q, t).expect("distance"));
            }
        }
        mean_rank(&dists, dbn, &proto.ground_truth)
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    println!("training TrajCL on a Porto-like dataset...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 500, 3);
    let splits = dataset.split(150, &mut rng);
    let cfg = TrajClConfig::test_default();
    let trajcl = Engine::builder()
        .train_trajcl_on(&dataset, &splits.train, &cfg, &mut rng)
        .expect("training")
        .build()
        .expect("engine build");
    let hausdorff = Engine::builder()
        .heuristic(HeuristicMeasure::Hausdorff)
        .build()
        .expect("engine build");
    let edr = Engine::builder()
        .heuristic(HeuristicMeasure::Edr(100.0))
        .build()
        .expect("engine build");

    let base = QueryProtocol::build(&splits.test, 20, 120, &mut rng);
    let mut drng = StdRng::seed_from_u64(32);
    let settings: Vec<(&str, QueryProtocol)> = vec![
        ("clean", base.clone()),
        (
            "down-sampled ρs=0.4",
            base.degrade(|t| downsample(t, 0.4, &mut drng)),
        ),
        (
            "distorted ρd=0.4",
            base.degrade(|t| distort(t, 0.4, 100.0, 0.5, &mut drng)),
        ),
    ];

    println!("\nmean rank of the planted match (1.0 = perfect, db = 120):");
    println!(
        "{:24} {:>10} {:>10} {:>10}",
        "", "Hausdorff", "EDR", "TrajCL"
    );
    for (name, proto) in &settings {
        let h = engine_mean_rank(&hausdorff, proto);
        let e = engine_mean_rank(&edr, proto);
        let t = engine_mean_rank(&trajcl, proto);
        println!("{name:24} {h:>10.2} {e:>10.2} {t:>10.2}");
    }
    println!("\n(the contrastive views — masking & truncation — are exactly what make");
    println!(" TrajCL stable under missing and shifted points; see paper §IV-A)");
}
