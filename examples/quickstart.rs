//! Quickstart: train TrajCL on a small synthetic taxi dataset and use the
//! learned embeddings to find similar trajectories.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl::core::{build_featurizer, l1_distances, train, EncoderVariant, MocoState, TrajClConfig};
use trajcl::data::{Dataset, DatasetProfile};
use trajcl::nn::StepDecay;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: a Porto-like synthetic taxi dataset (see DESIGN.md §4 for
    //    why the paper's external GPS datasets are substituted).
    println!("generating dataset...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 400, 0);
    let stats = dataset.stats();
    println!(
        "  {} trajectories, avg {:.0} points, avg {:.1} km",
        stats.count, stats.avg_points, stats.avg_length_km
    );
    let splits = dataset.split(150, &mut rng);

    // 2. Featurizer: 100 m grid + node2vec cell embeddings + spatial norm.
    println!("building featurizer (node2vec over the grid graph)...");
    let cfg = TrajClConfig::test_default();
    let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);

    // 3. Contrastive pre-training (MoCo dual branch + InfoNCE).
    println!("training TrajCL ({} params)...", {
        let probe = MocoState::new(&cfg, EncoderVariant::Dual, &mut StdRng::seed_from_u64(0));
        probe.online.store.num_scalars()
    });
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    let report = train(
        &mut moco,
        &featurizer,
        &splits.train,
        &StepDecay::trajcl_default(),
        &mut rng,
    );
    println!(
        "  {} epochs in {:.1}s, losses {:?}",
        report.epochs_run, report.seconds, report.epoch_losses
    );

    // 4. Similarity search: embed the test pool; for one query trajectory's
    //    odd-point view, its even-point view should be the nearest match.
    let query_full = &splits.test[0];
    let query = query_full.odd_points();
    let mut db = vec![query_full.even_points()];
    db.extend(splits.test[1..40.min(splits.test.len())].iter().cloned());

    let q_emb = moco.online.embed(&featurizer, std::slice::from_ref(&query), &mut rng);
    let db_emb = moco.online.embed(&featurizer, &db, &mut rng);
    let dists = l1_distances(&q_emb, &db_emb);
    let mut order: Vec<usize> = (0..db.len()).collect();
    order.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));

    println!("top-3 most similar trajectories to the query (index 0 is the planted match):");
    for (rank, &i) in order.iter().take(3).enumerate() {
        println!("  #{} -> database[{}]  L1 distance {:.3}", rank + 1, i, dists[i]);
    }
    let gt_rank = order.iter().position(|&i| i == 0).unwrap() + 1;
    println!("ground-truth match ranked {gt_rank} of {}", db.len());
}
