//! Quickstart: train TrajCL on a small synthetic taxi dataset through the
//! unified engine and use the learned embeddings to find similar
//! trajectories.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl::core::TrajClConfig;
use trajcl::data::{Dataset, DatasetProfile};
use trajcl::engine::Engine;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: a Porto-like synthetic taxi dataset (see DESIGN.md for why
    //    the paper's external GPS datasets are substituted).
    println!("generating dataset...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 400, 0);
    let stats = dataset.stats();
    println!(
        "  {} trajectories, avg {:.0} points, avg {:.1} km",
        stats.count, stats.avg_points, stats.avg_length_km
    );
    let splits = dataset.split(150, &mut rng);

    // 2-4. One builder chain: featurizer (100 m grid + node2vec + spatial
    //    norm) -> MoCo contrastive pre-training -> serving database. The
    //    database plants one ground-truth match: the even-point view of the
    //    query trajectory at index 0.
    let query_full = &splits.test[0];
    let query = query_full.odd_points();
    let mut db = vec![query_full.even_points()];
    db.extend(splits.test[1..40.min(splits.test.len())].iter().cloned());

    println!("training TrajCL + building the engine (grid, node2vec, MoCo)...");
    let cfg = TrajClConfig::test_default();
    let engine = Engine::builder()
        .train_trajcl_on(&dataset, &splits.train, &cfg, &mut rng)
        .expect("training")
        .database(db)
        .build()
        .expect("engine build");
    let report = engine.train_report().expect("trained via builder");
    println!(
        "  {} epochs in {:.1}s, losses {:?}",
        report.epochs_run, report.seconds, report.epoch_losses
    );

    // Similarity search: for the query's odd-point view, its even-point
    // view (database index 0) should be the nearest match. One full
    // ranking serves both the top-3 printout and the rank lookup.
    let db_len = engine.database().len();
    let full = engine.knn(&query, db_len).expect("knn");
    println!("top-3 most similar trajectories to the query (index 0 is the planted match):");
    for (rank, (id, dist)) in full.iter().take(3).enumerate() {
        println!("  #{} -> database[{id}]  L1 distance {dist:.3}", rank + 1);
    }
    let gt_rank = full.iter().position(|(id, _)| *id == 0).unwrap() + 1;
    println!("ground-truth match ranked {gt_rank} of {db_len}");
}
