//! §V-F as a program: fine-tune a pre-trained TrajCL encoder into a fast
//! estimator of the (expensive) EDwP measure with a handful of labelled
//! pairs, then compare ranking quality and speed against computing EDwP
//! exactly.
//!
//! ```sh
//! cargo run --release --example approximate_heuristic
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl::core::{
    build_featurizer, finetune, l1_distances, train, EncoderVariant, FinetuneConfig,
    FinetuneScope, MocoState, TrajClConfig,
};
use trajcl::data::{hit_ratio, Dataset, DatasetProfile};
use trajcl::measures::{pairwise_distances, HeuristicMeasure};
use trajcl::nn::StepDecay;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    println!("pre-training TrajCL (self-supervised, no labels)...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 450, 2);
    let splits = dataset.split(120, &mut rng);
    let cfg = TrajClConfig::test_default();
    let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    train(&mut moco, &featurizer, &splits.train, &StepDecay::trajcl_default(), &mut rng);

    // Fine-tune towards EDwP with a small labelled pool (paper: "minimal
    // supervision data").
    let measure = HeuristicMeasure::Edwp;
    let pool = &splits.downstream;
    let split = pool.len() * 7 / 10;
    println!("fine-tuning towards {} on {} trajectories...", measure.name(), split);
    let ft_cfg = FinetuneConfig {
        scope: FinetuneScope::LastLayer,
        pairs_per_epoch: 96,
        batch_pairs: 16,
        epochs: 3,
        lr: 2e-3,
    };
    let estimator = finetune(&moco.online, &featurizer, &pool[..split], measure, &ft_cfg, &mut rng);

    // Evaluate: HR@5 of the estimator vs the raw pre-trained encoder.
    let eval = &pool[split..];
    let nq = (eval.len() / 4).max(2);
    let (queries, database) = eval.split_at(nq);
    println!("computing exact {} ground truth ({}x{} pairs)...", measure.name(), nq, database.len());
    let t0 = Instant::now();
    let true_d = pairwise_distances(queries, database, measure);
    let exact_time = t0.elapsed();

    let t0 = Instant::now();
    let qe = estimator.embed(&featurizer, queries, &mut rng);
    let de = estimator.embed(&featurizer, database, &mut rng);
    let pred_tuned = l1_distances(&qe, &de);
    let est_time = t0.elapsed();

    let qr = moco.online.embed(&featurizer, queries, &mut rng);
    let dr = moco.online.embed(&featurizer, database, &mut rng);
    let pred_raw = l1_distances(&qr, &dr);

    let db = database.len();
    let (mut hr_tuned, mut hr_raw) = (0.0, 0.0);
    for q in 0..nq {
        hr_tuned += hit_ratio(&true_d[q * db..(q + 1) * db], &pred_tuned[q * db..(q + 1) * db], 5);
        hr_raw += hit_ratio(&true_d[q * db..(q + 1) * db], &pred_raw[q * db..(q + 1) * db], 5);
    }
    println!("\nHR@5 approximating {}:", measure.name());
    println!("  pre-trained encoder (no fine-tuning): {:.3}", hr_raw / nq as f64);
    println!("  fine-tuned estimator:                 {:.3}", hr_tuned / nq as f64);
    println!(
        "\nwall-clock for the {}x{} similarity matrix: exact {} = {exact_time:?}, estimator = {est_time:?}",
        nq,
        db,
        measure.name()
    );
}
