//! §V-F as a program: fine-tune a pre-trained TrajCL encoder into a fast
//! estimator of the (expensive) EDwP measure with a handful of labelled
//! pairs — via `Engine::approximate_measure` — then compare ranking
//! quality and speed against computing EDwP exactly.
//!
//! ```sh
//! cargo run --release --example approximate_heuristic
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl::core::{l1_distances, FinetuneConfig, FinetuneScope, TrajClConfig};
use trajcl::data::{hit_ratio, Dataset, DatasetProfile};
use trajcl::engine::Engine;
use trajcl::measures::{pairwise_distances, HeuristicMeasure};

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    println!("pre-training TrajCL (self-supervised, no labels)...");
    let dataset = Dataset::generate(DatasetProfile::porto(), 450, 2);
    let splits = dataset.split(120, &mut rng);
    let cfg = TrajClConfig::test_default();
    let engine = Engine::builder()
        .train_trajcl_on(&dataset, &splits.train, &cfg, &mut rng)
        .expect("training")
        .build()
        .expect("engine build");

    // Fine-tune towards EDwP with a small labelled pool (paper: "minimal
    // supervision data").
    let measure = HeuristicMeasure::Edwp;
    let pool = &splits.downstream;
    let split = pool.len() * 7 / 10;
    println!(
        "fine-tuning towards {} on {} trajectories...",
        measure.name(),
        split
    );
    let ft_cfg = FinetuneConfig {
        scope: FinetuneScope::LastLayer,
        pairs_per_epoch: 96,
        batch_pairs: 16,
        epochs: 3,
        lr: 2e-3,
    };
    let estimator = engine
        .approximate_measure(measure, &pool[..split], &ft_cfg, &mut rng)
        .expect("fine-tuning");

    // Evaluate: HR@5 of the estimator vs the raw pre-trained encoder.
    let eval = &pool[split..];
    let nq = (eval.len() / 4).max(2);
    let (queries, database) = eval.split_at(nq);
    println!(
        "computing exact {} ground truth ({}x{} pairs)...",
        measure.name(),
        nq,
        database.len()
    );
    let t0 = Instant::now();
    let true_d = pairwise_distances(queries, database, measure);
    let exact_time = t0.elapsed();

    let t0 = Instant::now();
    let qe = estimator.embed_all(queries).expect("embed queries");
    let de = estimator.embed_all(database).expect("embed database");
    let pred_tuned = l1_distances(&qe, &de);
    let est_time = t0.elapsed();

    let qr = engine.embed_all(queries).expect("embed queries");
    let dr = engine.embed_all(database).expect("embed database");
    let pred_raw = l1_distances(&qr, &dr);

    let db = database.len();
    let (mut hr_tuned, mut hr_raw) = (0.0, 0.0);
    for q in 0..nq {
        hr_tuned += hit_ratio(
            &true_d[q * db..(q + 1) * db],
            &pred_tuned[q * db..(q + 1) * db],
            5,
        );
        hr_raw += hit_ratio(
            &true_d[q * db..(q + 1) * db],
            &pred_raw[q * db..(q + 1) * db],
            5,
        );
    }
    println!(
        "\nHR@5 approximating {} (backend {:?}):",
        measure.name(),
        estimator.backend().name()
    );
    println!(
        "  pre-trained encoder (no fine-tuning): {:.3}",
        hr_raw / nq as f64
    );
    println!(
        "  fine-tuned estimator:                 {:.3}",
        hr_tuned / nq as f64
    );
    println!(
        "\nwall-clock for the {}x{} similarity matrix: exact {} = {exact_time:?}, estimator = {est_time:?}",
        nq,
        db,
        measure.name()
    );
}
