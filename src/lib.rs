//! # trajcl
//!
//! Umbrella crate for the full-Rust reproduction of **"Contrastive
//! Trajectory Similarity Learning with Dual-Feature Attention"**
//! (TrajCL, ICDE 2023). Re-exports every workspace crate:
//!
//! * [`tensor`] — from-scratch f32 tensors + reverse-mode autograd;
//! * [`nn`] — layers, attention, RNN cells, optimizers;
//! * [`geo`] — trajectories, grids, Douglas–Peucker, spatial features;
//! * [`measures`] — Hausdorff / Fréchet / EDR / EDwP / DTW;
//! * [`graph`] — node2vec cell embeddings;
//! * [`data`] — synthetic datasets, augmentations, evaluation protocol;
//! * [`core`] — TrajCL itself (DualMSM/DualSTB, MoCo, fine-tuning);
//! * [`baselines`] — t2vec, E2DTC, TrjSR, CSTRM, T3S, Traj2SimVec, TrajGAT;
//! * [`index`] — IVF embedding index + segment Hausdorff index;
//! * [`engine`] — the unified similarity API: one object-safe
//!   `SimilarityBackend` over TrajCL, baselines and heuristic measures,
//!   served by `Engine`/`EngineBuilder` with kNN routing and persistence;
//! * [`serve`] — the concurrent serving runtime: micro-batched embedding,
//!   a mutable snapshot-readable index, an LRU embedding cache and the
//!   `trajcl serve` wire protocol.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and DESIGN.md for
//! the architecture (crate graph, engine trait diagram, error-handling
//! policy).

pub use trajcl_baselines as baselines;
pub use trajcl_core as core;
pub use trajcl_data as data;
pub use trajcl_engine as engine;
pub use trajcl_geo as geo;
pub use trajcl_graph as graph;
pub use trajcl_index as index;
pub use trajcl_measures as measures;
pub use trajcl_nn as nn;
pub use trajcl_serve as serve;
pub use trajcl_tensor as tensor;
